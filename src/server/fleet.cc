#include "server/fleet.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <thread>
#include <utility>

#include "gdatalog/export.h"
#include "gdatalog/shard.h"
#include "obs/trace.h"
#include "server/options.h"
#include "util/json.h"

namespace gdlog {

namespace {

/// The shard-plan coordinates every fleet request carries. All of them are
/// inputs of the pure plan function, so a worker given the same
/// coordinates recomputes the coordinator's plan exactly.
struct PlanCoordinates {
  size_t shards = 1;
  size_t prefix_depth = 0;
  ShardAssignment assignment = ShardAssignment::kWeighted;
};

Result<PlanCoordinates> ReadPlanCoordinates(const JsonValue& body,
                                            size_t default_shards) {
  PlanCoordinates plan;
  GDLOG_ASSIGN_OR_RETURN(uint64_t shards,
                         OptionalU64(body, "shards", default_shards));
  if (shards < 1) {
    return Status::InvalidArgument("'shards' must be a positive integer");
  }
  plan.shards = static_cast<size_t>(shards);
  GDLOG_ASSIGN_OR_RETURN(uint64_t depth,
                         OptionalU64(body, "prefix_depth", 0));
  plan.prefix_depth = static_cast<size_t>(depth);
  GDLOG_ASSIGN_OR_RETURN(
      std::string assignment,
      OptionalString(body, "assignment",
                     ShardAssignmentName(ShardAssignment::kWeighted)));
  GDLOG_ASSIGN_OR_RETURN(plan.assignment, ParseShardAssignment(assignment));
  return plan;
}

/// The /v1/shards request a coordinator sends for `indices`. The program
/// travels inline (spec fields, not the coordinator-local id): the
/// worker's registry registers it idempotently, so only the first request
/// per worker pays an engine build, and a worker that has never seen the
/// program needs no separate provisioning step. The registry keeps
/// spec.db_text current across PATCH deltas, which is what makes shipping
/// the spec equivalent to shipping the coordinator's database.
std::string ShardRequestBody(const ProgramSpec& spec,
                             const ChaseOptions& chase,
                             const PlanCoordinates& plan,
                             const std::vector<size_t>& indices) {
  JsonWriter json;
  json.BeginObject();
  json.KV("program", spec.program_text);
  if (!spec.db_text.empty()) json.KV("db", spec.db_text);
  json.KV("grounder", GrounderWireName(spec.grounder));
  if (spec.extensions) {
    json.KV("extensions", true);
    if (spec.normalgrid_max_cells >= 0) {
      json.KV("normalgrid_max_cells",
              static_cast<long long>(spec.normalgrid_max_cells));
    }
  }
  // Exactly the result-affecting options (the fingerprint fields), stated
  // explicitly so a worker with different built-in defaults still explores
  // the coordinator's space. num_threads stays a worker-local choice —
  // thread count never changes results.
  json.Key("options").BeginObject();
  json.KV("max_outcomes", static_cast<long long>(chase.max_outcomes));
  json.KV("max_depth", static_cast<long long>(chase.max_depth));
  json.KV("support_limit", static_cast<long long>(chase.support_limit));
  // %.17g round-trips through strtod, so the worker's double — and hence
  // its serialized meta — matches the coordinator's bit for bit.
  json.KV("min_path_prob", chase.min_path_prob);
  json.KV("trigger_shuffle_seed",
          static_cast<long long>(chase.trigger_shuffle_seed));
  json.KV("solver_max_nodes",
          static_cast<long long>(chase.solver_max_nodes));
  json.EndObject();
  json.KV("shards", static_cast<long long>(plan.shards));
  json.KV("prefix_depth", static_cast<long long>(plan.prefix_depth));
  json.KV("assignment", ShardAssignmentName(plan.assignment));
  json.Key("shard_indices").BeginArray();
  for (size_t index : indices) json.Int(static_cast<long long>(index));
  json.EndArray();
  json.EndObject();
  return json.str();
}

constexpr size_t kNoWorker = static_cast<size_t>(-1);

}  // namespace

Result<std::pair<std::string, int>> ParseHostPort(
    const std::string& address) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return Status::InvalidArgument("worker address must be host:port; got '" +
                                   address + "'");
  }
  std::string port_text = address.substr(colon + 1);
  if (port_text.find_first_not_of("0123456789") != std::string::npos ||
      port_text.size() > 5) {
    return Status::InvalidArgument("bad worker port in '" + address + "'");
  }
  int port = std::atoi(port_text.c_str());
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument("bad worker port in '" + address + "'");
  }
  return std::make_pair(address.substr(0, colon), port);
}

// ---------------------------------------------------------------------------
// PartialCache
// ---------------------------------------------------------------------------

std::optional<std::string> FleetService::PartialCache::Lookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->line;
}

void FleetService::PartialCache::Insert(const std::string& key,
                                        const std::string& line) {
  size_t entry_bytes = key.size() + line.size();
  if (capacity_ == 0 || entry_bytes > capacity_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Deterministic chase: a re-insert carries identical bytes; just
    // refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (bytes_ + entry_bytes > capacity_ && !lru_.empty()) {
    Entry& victim = lru_.back();
    bytes_ -= victim.key.size() + victim.line.size();
    index_.erase(victim.key);
    lru_.pop_back();
  }
  lru_.push_front(Entry{key, line});
  index_[key] = lru_.begin();
  bytes_ += entry_bytes;
}

void FleetService::PartialCache::ErasePrefix(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.compare(0, prefix.size(), prefix) == 0) {
      bytes_ -= it->key.size() + it->line.size();
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Worker half: POST /v1/shards
// ---------------------------------------------------------------------------

HttpResponse FleetService::HandleShards(const HttpRequest& request) {
  shard_requests_.fetch_add(1, std::memory_order_relaxed);
  auto body = ParseBody(request);
  if (!body.ok()) return ErrorResponse(body.status());

  // Program resolution: inline spec (registered idempotently — the
  // coordinator's distribution path) or a worker-local id.
  std::shared_ptr<const ProgramRegistry::Entry> entry;
  if (body->Find("program") != nullptr) {
    auto spec = ParseProgramSpec(*body);
    if (!spec.ok()) return ErrorResponse(spec.status());
    auto info = registry_->Register(std::move(*spec));
    if (!info.ok()) return ErrorResponse(info.status());
    entry = registry_->Find(info->id);
  } else {
    auto id = RequiredString(*body, "program_id");
    if (!id.ok()) return ErrorResponse(id.status());
    entry = registry_->Find(*id);
    if (entry == nullptr) {
      return ErrorResponse(Status::NotFound("unknown program id: " + *id));
    }
  }
  if (entry == nullptr) {
    return ErrorResponse(Status::Internal("program entry vanished"));
  }
  // Optional pinning: a caller naming revision/lineage means "this exact
  // database state"; refuse rather than silently explore another one.
  if (const JsonValue* revision = body->Find("revision")) {
    auto want = revision->NumberAsInt();
    if (!want.ok() || *want < 0 ||
        static_cast<uint64_t>(*want) != entry->revision) {
      return ErrorResponse(Status::AlreadyExists(
          "revision mismatch: worker has " +
          std::to_string(entry->revision)));
    }
  }
  if (const JsonValue* lineage = body->Find("lineage")) {
    if (!lineage->is_string() ||
        lineage->string_value() != entry->lineage_digest) {
      return ErrorResponse(
          Status::AlreadyExists("lineage mismatch: worker has '" +
                                entry->lineage_digest + "'"));
    }
  }

  auto chase = ReadChaseOptions(*body, options_.default_chase);
  if (!chase.ok()) return ErrorResponse(chase.status());
  // "shards" is effectively required here: the 0 default fails the >= 1
  // check, so a request without it is rejected with a named error.
  auto plan_coords = ReadPlanCoordinates(*body, /*default_shards=*/0);
  if (!plan_coords.ok()) return ErrorResponse(plan_coords.status());
  const JsonValue* indices_field = body->Find("shard_indices");
  if (indices_field == nullptr || !indices_field->is_array() ||
      indices_field->array().empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "'shard_indices' must be a non-empty array of shard indices"));
  }
  std::vector<size_t> indices;
  for (const JsonValue& index : indices_field->array()) {
    auto value = index.is_number() ? index.NumberAsInt()
                                   : Result<long long>(Status::InvalidArgument(
                                         "bad shard index"));
    if (!value.ok() || *value < 0 ||
        static_cast<uint64_t>(*value) >= plan_coords->shards) {
      return ErrorResponse(Status::InvalidArgument(
          "'shard_indices' entries must be integers in [0, shards)"));
    }
    indices.push_back(static_cast<size_t>(*value));
  }

  auto plan = entry->engine.chase().PlanShards(
      *chase, plan_coords->shards, plan_coords->prefix_depth,
      plan_coords->assignment);
  if (!plan.ok()) return ErrorResponse(plan.status());

  // Shared with the streaming closure, which outlives this frame.
  struct StreamState {
    std::shared_ptr<const ProgramRegistry::Entry> entry;
    ShardPlan plan;
    ChaseOptions chase;
    std::vector<size_t> indices;
    std::string key_prefix;
  };
  auto state = std::make_shared<StreamState>();
  state->entry = entry;
  state->plan = std::move(*plan);
  state->chase = *chase;
  state->indices = std::move(indices);
  // The partial-cache key: the /query fingerprint (id, revision, lineage,
  // result-affecting options) plus the *resolved* plan coordinates — so an
  // auto prefix depth and its resolved value share one entry — plus the
  // shard index. Prefix-invalidated by id on any db change.
  state->key_prefix =
      InferenceCache::Fingerprint(state->entry->id, state->entry->revision,
                                  state->entry->lineage_digest,
                                  state->chase) +
      "|plan=" + std::to_string(state->plan.num_shards) + "," +
      std::to_string(state->plan.prefix_depth) + "," +
      ShardAssignmentName(state->plan.assignment);

  auto produce = [this, state](size_t index) -> Result<std::string> {
    std::string key = state->key_prefix + "|shard=" + std::to_string(index);
    if (auto cached = partial_cache_.Lookup(key)) {
      partial_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return std::move(*cached);
    }
    partial_cache_misses_.fetch_add(1, std::memory_order_relaxed);
    auto partial = state->entry->engine.chase().ExploreShard(
        state->plan, index, state->chase);
    if (!partial.ok()) return partial.status();
    shards_explored_.fetch_add(1, std::memory_order_relaxed);
    ShardPartialMeta meta =
        MakeShardPartialMeta(state->plan, index, state->chase);
    std::string line =
        PartialSpaceToJson(*partial, meta,
                           state->entry->engine.program().interner()) +
        "\n";
    partial_cache_.Insert(key, line);
    return line;
  };

  // The first line is produced synchronously so early failures (an engine
  // error on the first index) still get a proper error envelope instead of
  // a truncated 200.
  auto first = produce(state->indices[0]);
  if (!first.ok()) return ErrorResponse(first.status());

  HttpResponse response;
  response.status = 200;
  response.content_type = "application/x-ndjson";
  response.stream = [state, produce, first_line = std::move(*first)](
                        const HttpResponse::ChunkSink& emit) -> Status {
    GDLOG_RETURN_IF_ERROR(emit(first_line));
    for (size_t i = 1; i < state->indices.size(); ++i) {
      auto line = produce(state->indices[i]);
      // A mid-stream failure aborts the chunked stream before the
      // terminal chunk: the coordinator sees a truncated, retryable
      // exchange — never a complete-looking short response.
      if (!line.ok()) return line.status();
      GDLOG_RETURN_IF_ERROR(emit(*line));
    }
    return Status::OK();
  };
  return response;
}

// ---------------------------------------------------------------------------
// Coordinator half: POST /v1/jobs
// ---------------------------------------------------------------------------

HttpResponse FleetService::HandleJobs(const HttpRequest& request,
                                      const std::string& trace) {
  jobs_.fetch_add(1, std::memory_order_relaxed);
  jobs_in_flight_.fetch_add(1, std::memory_order_relaxed);
  struct InFlightGuard {
    std::atomic<uint64_t>* gauge;
    ~InFlightGuard() { gauge->fetch_sub(1, std::memory_order_relaxed); }
  } in_flight_guard{&jobs_in_flight_};
  auto fail = [&](const Status& status) {
    jobs_failed_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(status);
  };
  auto body = ParseBody(request);
  if (!body.ok()) return fail(body.status());
  auto id = RequiredString(*body, "program_id");
  if (!id.ok()) return fail(id.status());
  auto entry = registry_->Find(*id);
  if (entry == nullptr) {
    return fail(Status::NotFound("unknown program id: " + *id));
  }
  auto chase = ReadChaseOptions(*body, options_.default_chase);
  if (!chase.ok()) return fail(chase.status());

  std::vector<std::string> workers = options_.default_workers;
  if (const JsonValue* list = body->Find("workers")) {
    if (!list->is_array()) {
      return fail(Status::InvalidArgument(
          "'workers' must be an array of host:port strings"));
    }
    workers.clear();
    for (const JsonValue& worker : list->array()) {
      if (!worker.is_string()) {
        return fail(Status::InvalidArgument(
            "'workers' must be an array of host:port strings"));
      }
      workers.push_back(worker.string_value());
    }
  }
  if (workers.empty()) {
    return fail(Status::InvalidArgument(
        "no workers: pass 'workers' or start gdlogd with --fleet-workers"));
  }
  for (const std::string& worker : workers) {
    auto parsed = ParseHostPort(worker);
    if (!parsed.ok()) return fail(parsed.status());
  }

  auto plan_coords =
      ReadPlanCoordinates(*body, /*default_shards=*/workers.size());
  if (!plan_coords.ok()) return fail(plan_coords.status());
  auto deadline = OptionalU64(*body, "deadline_ms",
                              static_cast<uint64_t>(options_.deadline_ms));
  if (!deadline.ok()) return fail(deadline.status());
  int deadline_ms =
      static_cast<int>(std::min<uint64_t>(*deadline, 3'600'000));
  if (deadline_ms < 1) deadline_ms = 1;
  auto steal = OptionalBool(*body, "steal", true);
  if (!steal.ok()) return fail(steal.status());
  auto steal_after =
      OptionalU64(*body, "steal_after_ms",
                  static_cast<uint64_t>(options_.steal_after_ms));
  if (!steal_after.ok()) return fail(steal_after.status());
  int steal_after_ms =
      static_cast<int>(std::min<uint64_t>(*steal_after, 3'600'000));
  if (steal_after_ms < 1) steal_after_ms = 1;

  auto include_outcomes = OptionalBool(*body, "include_outcomes", false);
  auto include_models = OptionalBool(*body, "include_models", false);
  auto include_events = OptionalBool(*body, "include_events", false);
  auto include_spans = OptionalBool(*body, "spans", false);
  if (!include_outcomes.ok()) return fail(include_outcomes.status());
  if (!include_models.ok()) return fail(include_models.status());
  if (!include_events.ok()) return fail(include_events.status());
  if (!include_spans.ok()) return fail(include_spans.status());

  // The merged space is bit-identical to a single-process run, so the job
  // shares the *same* fingerprint — and hence cache entries — with /query:
  // a job warms the cache for queries and vice versa.
  std::string key = InferenceCache::Fingerprint(
      entry->id, entry->revision, entry->lineage_digest, *chase);
  JobSpans spans;
  bool computed = false;
  auto space = cache_->LookupOrCompute(key, [&]() {
    computed = true;
    return RunJob(*entry, *chase, plan_coords->shards,
                  plan_coords->prefix_depth, plan_coords->assignment,
                  workers, deadline_ms, *steal, steal_after_ms, trace,
                  &spans);
  });
  if (!space.ok()) return fail(space.status());
  if (computed) {
    // One line per computed job stitches the coordinator's view to the
    // workers' access logs via the shared trace id. Timings are wall time
    // — diagnostics, not results.
    std::fprintf(stderr,
                 "gdlogd: job trace=%s plan_ms=%.3f dispatch_ms=%.3f "
                 "merge_ms=%.3f exchanges=%zu\n",
                 trace.empty() ? "-" : trace.c_str(), spans.plan_ns / 1e6,
                 spans.dispatch_ns / 1e6, spans.merge_ns / 1e6,
                 spans.exchanges.size());
  }

  JsonExportOptions json_options;
  json_options.include_outcomes = *include_outcomes;
  json_options.include_models = *include_models;
  json_options.include_events = *include_events;
  // Byte-identical to /query's full-document body (and so to
  // `gdlog_cli --json`) for the same program/DB/options.
  std::string doc = OutcomeSpaceToJson(**space, entry->engine.translated(),
                                       entry->engine.program().interner(),
                                       json_options);
  // The span block is strictly opt-in ("spans": true) and only exists when
  // this request actually computed the job (a cache hit ran nothing), so
  // the default body keeps the byte-identity contract above.
  if (*include_spans && computed) {
    JsonWriter json;
    json.BeginObject();
    if (!trace.empty()) json.KV("trace", trace);
    json.KV("plan_ms", spans.plan_ns / 1e6);
    json.KV("dispatch_ms", spans.dispatch_ns / 1e6);
    json.KV("merge_ms", spans.merge_ns / 1e6);
    json.Key("exchanges").BeginArray();
    for (const JobSpans::Exchange& exchange : spans.exchanges) {
      json.BeginObject();
      json.KV("exchange", static_cast<long long>(exchange.exchange));
      json.KV("shards", static_cast<long long>(exchange.shards));
      json.KV("worker", exchange.worker);
      json.KV("kind", exchange.kind);
      json.KV("ok", exchange.ok);
      json.KV("time_ms", exchange.time_ns / 1e6);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    doc.insert(doc.size() - 1, ",\"spans\":" + json.str());
  }
  return JsonResponse(200, doc + "\n");
}

// ---------------------------------------------------------------------------
// The dispatch loop
// ---------------------------------------------------------------------------

Result<OutcomeSpace> FleetService::RunJob(
    const ProgramRegistry::Entry& entry, const ChaseOptions& chase,
    size_t num_shards, size_t prefix_depth, ShardAssignment assignment,
    const std::vector<std::string>& workers, int deadline_ms, bool steal,
    int steal_after_ms, const std::string& trace, JobSpans* spans) {
  const uint64_t plan_start_ns = MonotonicNanos();
  GDLOG_ASSIGN_OR_RETURN(
      ShardPlan plan,
      entry.engine.chase().PlanShards(chase, num_shards, prefix_depth,
                                      assignment));
  if (spans != nullptr) spans->plan_ns = MonotonicNanos() - plan_start_ns;
  const Interner& interner = *entry.engine.program().interner();

  // Shard groups, one per worker (modular when shards outnumber workers).
  // The weighted assignment already balanced mass across *shards*, so the
  // grouping needs no weighting of its own.
  const size_t num_groups = std::min(workers.size(), plan.num_shards);
  std::vector<std::vector<size_t>> groups(num_groups);
  for (size_t shard = 0; shard < plan.num_shards; ++shard) {
    groups[shard % num_groups].push_back(shard);
  }
  // Workers recompute the plan from these coordinates; the resolved
  // prefix_depth is sent (not the request's, which may have been 0 =
  // auto) so workers skip the auto-deepening search and provably expand
  // the same frontier.
  PlanCoordinates coords;
  coords.shards = plan.num_shards;
  coords.prefix_depth = plan.prefix_depth;
  coords.assignment = plan.assignment;

  const ShardPartialMeta expected = MakeShardPartialMeta(plan, 0, chase);

  // --- shared job state -----------------------------------------------
  // All dispatch decisions happen under one mutex; the exchanges
  // themselves (network + parse) run outside it. Invariant: every
  // unmerged shard index lives in `pending` or in some active flight.
  struct PendingGroup {
    std::vector<size_t> indices;
    /// First-wave seed owner, or kNoWorker once the group returned to the
    /// common pool after a failure.
    size_t preferred = kNoWorker;
    bool is_retry = false;
  };
  struct Flight {
    bool active = false;
    std::vector<size_t> indices;
    uint64_t start_ns = 0;
    /// A steal already duplicated this flight's undelivered indices; one
    /// steal per flight keeps speculation bounded.
    bool steal_target = false;
  };
  struct JobState {
    std::mutex mu;
    std::condition_variable cv;
    StreamingMerger merger;
    std::vector<char> merged;
    size_t remaining = 0;
    std::vector<std::vector<char>> attempted;  ///< [worker][shard]
    std::deque<PendingGroup> pending;
    std::vector<Flight> flights;  ///< [worker]
    std::vector<char> healthy;
    size_t active_workers = 0;
    size_t next_exchange = 0;
    Status last_error = Status::OK();
  } st;
  st.merged.assign(plan.num_shards, 0);
  st.remaining = plan.num_shards;
  st.attempted.assign(workers.size(),
                      std::vector<char>(plan.num_shards, 0));
  st.flights.resize(workers.size());
  st.healthy.assign(workers.size(), 1);
  st.active_workers = workers.size();
  for (size_t group = 0; group < num_groups; ++group) {
    PendingGroup seed;
    seed.indices = groups[group];
    seed.preferred = group;
    st.pending.push_back(std::move(seed));
  }

  std::atomic<bool> job_done{false};
  // Resident-partials accounting: parsed-but-not-yet-folded partials. The
  // streaming merge keeps this bounded by the worker count — never by the
  // shard count.
  std::atomic<uint64_t> resident{0};

  const uint64_t dispatch_start_ns = MonotonicNanos();

  // Folds one delivered NDJSON line. `position` is the line's ordinal
  // within its exchange (workers answer in request order, dedup or not).
  auto deliver_line = [&](const std::vector<size_t>& want, size_t position,
                          std::string_view line) -> Status {
    ShardPartialMeta meta;
    auto partial = PartialSpaceFromJson(line, interner, &meta);
    if (!partial.ok()) return partial.status();
    if (!meta.SamePlanAndBudgets(expected) ||
        meta.shard_index >= plan.num_shards) {
      return Status::Internal(
          "worker partial was produced under a different shard plan or "
          "different budgets");
    }
    if (position >= want.size() || meta.shard_index != want[position]) {
      return Status::Internal("worker returned partials out of order");
    }
    partials_streamed_.fetch_add(1, std::memory_order_relaxed);
    uint64_t now_resident =
        resident.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t peak =
        peak_resident_partials_.load(std::memory_order_relaxed);
    while (now_resident > peak &&
           !peak_resident_partials_.compare_exchange_weak(
               peak, now_resident, std::memory_order_relaxed)) {
    }
    std::lock_guard<std::mutex> lock(st.mu);
    if (st.merged[meta.shard_index]) {
      // A stolen (or re-dispatched) duplicate lost the race: the first
      // delivered copy won, this one is discarded. Deterministic because
      // identical plans produce identical partials — which copy merged
      // never changes the bytes.
      duplicate_partials_.fetch_add(1, std::memory_order_relaxed);
      resident.fetch_sub(1, std::memory_order_relaxed);
      return Status::OK();
    }
    st.merger.Add(std::move(*partial));
    resident.fetch_sub(1, std::memory_order_relaxed);
    st.merged[meta.shard_index] = 1;
    --st.remaining;
    partials_merged_.fetch_add(1, std::memory_order_relaxed);
    if (st.remaining == 0) {
      job_done.store(true, std::memory_order_release);
      st.cv.notify_all();
    }
    return Status::OK();
  };

  // One worker exchange, end to end: POST the indices, fold lines as they
  // stream in, then settle the flight under the lock.
  auto dispatch = [&](size_t worker, std::vector<size_t> indices,
                      const char* kind, size_t exchange_ordinal) {
    dispatches_.fetch_add(1, std::memory_order_relaxed);
    std::string request_body =
        ShardRequestBody(entry.spec, chase, coords, indices);
    const uint64_t start_ns = MonotonicNanos();
    size_t delivered = 0;
    Status result = Status::OK();
    auto host_port = ParseHostPort(workers[worker]);
    if (!host_port.ok()) {
      result = host_port.status();
    } else {
      auto client = HttpClient::Connect(host_port->first, host_port->second,
                                        deadline_ms);
      if (!client.ok()) {
        result = client.status();
      } else {
        HttpClient::HeaderList extra_headers;
        if (!trace.empty()) extra_headers.emplace_back(kTraceHeader, trace);
        auto on_line = [&](std::string_view line) -> Status {
          GDLOG_RETURN_IF_ERROR(deliver_line(indices, delivered, line));
          ++delivered;
          return Status::OK();
        };
        auto response = client->RequestStreamingLines(
            "POST", "/v1/shards", request_body, deadline_ms, extra_headers,
            on_line, &job_done);
        if (!response.ok()) {
          result = response.status();
        } else if (response->status != 200) {
          result = Status::Internal(
              "worker " + workers[worker] + " returned HTTP " +
              std::to_string(response->status));
        } else if (delivered != indices.size()) {
          result = Status::Internal(
              "worker " + workers[worker] + " returned " +
              std::to_string(delivered) + " partials for " +
              std::to_string(indices.size()) + " shards");
        }
      }
    }
    const uint64_t elapsed_ns = MonotonicNanos() - start_ns;
    dispatch_hist_.RecordNanos(elapsed_ns);
    RecordWorkerDispatch(workers[worker], elapsed_ns);

    std::lock_guard<std::mutex> lock(st.mu);
    if (spans != nullptr) {
      JobSpans::Exchange span;
      span.exchange = exchange_ordinal;
      span.shards = indices.size();
      span.worker = workers[worker];
      span.kind = kind;
      span.ok = result.ok();
      span.time_ns = elapsed_ns;
      spans->exchanges.push_back(std::move(span));
    }
    st.flights[worker].active = false;
    // Attempt-at-most-once per (worker, shard): the monotone set that
    // guarantees the dispatch loop terminates.
    for (size_t index : indices) st.attempted[worker][index] = 1;
    if (!result.ok() && !job_done.load(std::memory_order_acquire)) {
      // A genuine failure — not the deliberate cancel of a straggler
      // exchange after the job completed. The worker is abandoned and the
      // undelivered indices return to the common pool.
      worker_failures_.fetch_add(1, std::memory_order_relaxed);
      st.healthy[worker] = 0;
      st.last_error = result;
      std::vector<size_t> undelivered;
      for (size_t index : indices) {
        if (!st.merged[index]) undelivered.push_back(index);
      }
      if (!undelivered.empty()) {
        PendingGroup regroup;
        regroup.indices = std::move(undelivered);
        regroup.is_retry = true;
        st.pending.push_back(std::move(regroup));
      }
    }
    st.cv.notify_all();
  };

  // Per-worker dispatch loop over the shared pool: own seeded group
  // first, then orphaned pending work, then — once idle and past the
  // steal threshold — a straggler's undelivered indices.
  auto worker_loop = [&](size_t w) {
    std::unique_lock<std::mutex> lock(st.mu);
    for (;;) {
      if (st.remaining == 0 || !st.healthy[w]) break;
      // Monotone exit: a worker that has attempted every still-unmerged
      // index can never contribute again.
      bool can_contribute = false;
      for (size_t index = 0; index < plan.num_shards; ++index) {
        if (!st.merged[index] && !st.attempted[w][index]) {
          can_contribute = true;
          break;
        }
      }
      if (!can_contribute) break;

      // Prune pending: drop merged indices, erase emptied groups.
      for (auto it = st.pending.begin(); it != st.pending.end();) {
        std::vector<size_t> unmerged;
        for (size_t index : it->indices) {
          if (!st.merged[index]) unmerged.push_back(index);
        }
        if (unmerged.empty()) {
          it = st.pending.erase(it);
        } else {
          it->indices = std::move(unmerged);
          ++it;
        }
      }

      std::vector<size_t> take;
      const char* kind = "dispatch";
      // 1) Pending work. Own seed wins outright; a foreign seed is only
      // up for grabs once its owner is unhealthy (the owner claims it
      // first otherwise); failure re-groups (preferred == kNoWorker) go
      // to whoever is free. Indices this worker already attempted stay
      // pending for someone else — that split is what lets a group
      // bounce between workers without ever losing an index.
      auto chosen = st.pending.end();
      for (auto it = st.pending.begin(); it != st.pending.end(); ++it) {
        bool claimable = it->preferred == w ||
                         it->preferred == kNoWorker ||
                         !st.healthy[it->preferred];
        if (!claimable) continue;
        bool has_untried = false;
        for (size_t index : it->indices) {
          if (!st.attempted[w][index]) {
            has_untried = true;
            break;
          }
        }
        if (!has_untried) continue;
        if (it->preferred == w) {
          chosen = it;
          break;
        }
        if (chosen == st.pending.end()) chosen = it;
      }
      if (chosen != st.pending.end()) {
        std::vector<size_t> leftover;
        for (size_t index : chosen->indices) {
          (st.attempted[w][index] ? leftover : take).push_back(index);
        }
        kind = chosen->is_retry ? "retry" : "dispatch";
        if (chosen->is_retry) {
          retries_.fetch_add(1, std::memory_order_relaxed);
        }
        if (leftover.empty()) {
          st.pending.erase(chosen);
        } else {
          chosen->indices = std::move(leftover);
        }
      }

      // 2) Steal: duplicate the undelivered indices of the oldest-past-
      // threshold straggler flight. Safe because any re-assignment of the
      // pure plan is valid; the first delivered copy wins.
      if (take.empty() && steal) {
        uint64_t now_ns = MonotonicNanos();
        size_t best = kNoWorker;
        size_t best_count = 0;
        for (size_t v = 0; v < workers.size(); ++v) {
          if (v == w) continue;
          const Flight& flight = st.flights[v];
          if (!flight.active || flight.steal_target) continue;
          if (now_ns - flight.start_ns <
              static_cast<uint64_t>(steal_after_ms) * 1'000'000ull) {
            continue;
          }
          size_t count = 0;
          for (size_t index : flight.indices) {
            if (!st.merged[index] && !st.attempted[w][index]) ++count;
          }
          if (count > best_count) {
            best_count = count;
            best = v;
          }
        }
        if (best != kNoWorker) {
          Flight& victim = st.flights[best];
          for (size_t index : victim.indices) {
            if (!st.merged[index] && !st.attempted[w][index]) {
              take.push_back(index);
            }
          }
          victim.steal_target = true;
          kind = "steal";
          steals_.fetch_add(1, std::memory_order_relaxed);
        }
      }

      if (!take.empty()) {
        Flight& mine = st.flights[w];
        mine.active = true;
        mine.indices = take;
        mine.start_ns = MonotonicNanos();
        mine.steal_target = false;
        size_t ordinal = st.next_exchange++;
        // A newly activated flight changes every idle worker's steal
        // horizon — without this wake, a worker that scanned before the
        // flight existed would sleep with no bound until the flight
        // settles (lost-wakeup: only settles and folds notify).
        st.cv.notify_all();
        lock.unlock();
        dispatch(w, std::move(take), kind, ordinal);
        lock.lock();
        continue;
      }

      // Nothing claimable right now. Every state change (line folded,
      // flight settled) notifies the cv; the only silent transition is a
      // flight aging past the steal threshold, so bound the wait by the
      // soonest such moment.
      long long wait_ms = -1;
      if (steal) {
        uint64_t now_ns = MonotonicNanos();
        for (size_t v = 0; v < workers.size(); ++v) {
          if (v == w) continue;
          const Flight& flight = st.flights[v];
          if (!flight.active || flight.steal_target) continue;
          uint64_t age_ms = (now_ns - flight.start_ns) / 1'000'000ull;
          long long remain =
              static_cast<long long>(steal_after_ms) -
              static_cast<long long>(age_ms) + 1;
          if (remain < 1) remain = 1;
          if (wait_ms < 0 || remain < wait_ms) wait_ms = remain;
        }
      }
      if (wait_ms < 0) {
        st.cv.wait(lock);
      } else {
        st.cv.wait_for(lock, std::chrono::milliseconds(wait_ms));
      }
    }
    --st.active_workers;
    st.cv.notify_all();
  };

  {
    std::vector<std::thread> threads;
    threads.reserve(workers.size());
    for (size_t w = 0; w < workers.size(); ++w) {
      threads.emplace_back([&worker_loop, w]() { worker_loop(w); });
    }
    for (std::thread& thread : threads) thread.join();
  }

  const uint64_t merge_finish_ns = MonotonicNanos();
  if (spans != nullptr) {
    spans->dispatch_ns = merge_finish_ns - dispatch_start_ns;
  }
  if (st.remaining != 0) {
    return Status::BudgetExhausted(
        "fleet job failed: no healthy worker left for " +
        std::to_string(st.remaining) + " shard(s) (last error: " +
        st.last_error.message() + ")");
  }
  // Coverage held line by line: every shard folded exactly once
  // (st.merged), every partial validated against the expected plan and
  // budgets before folding. Finish() sums masses in global canonical
  // order — byte-identical to the buffered merge.
  auto merged = st.merger.Finish(chase.max_outcomes);
  if (spans != nullptr) {
    spans->merge_ns = MonotonicNanos() - merge_finish_ns;
  }
  return merged;
}

void FleetService::RecordWorkerDispatch(const std::string& worker,
                                        uint64_t ns) {
  std::lock_guard<std::mutex> lock(worker_mu_);
  WorkerStats& stats = worker_stats_[worker];
  stats.hist.RecordNanos(ns);
  stats.dispatches += 1;
  if (ns > stats.max_ns) stats.max_ns = ns;
}

std::map<std::string, FleetService::WorkerDispatchStats>
FleetService::WorkerDispatches() const {
  std::lock_guard<std::mutex> lock(worker_mu_);
  std::map<std::string, WorkerDispatchStats> out;
  for (const auto& [worker, stats] : worker_stats_) {
    WorkerDispatchStats snapshot;
    snapshot.dispatches = stats.dispatches;
    snapshot.max_ns = stats.max_ns;
    snapshot.hist = stats.hist.TakeSnapshot();
    out.emplace(worker, std::move(snapshot));
  }
  return out;
}

FleetService::Counters FleetService::counters() const {
  Counters counters;
  counters.shard_requests =
      shard_requests_.load(std::memory_order_relaxed);
  counters.shards_explored =
      shards_explored_.load(std::memory_order_relaxed);
  counters.jobs = jobs_.load(std::memory_order_relaxed);
  counters.jobs_failed = jobs_failed_.load(std::memory_order_relaxed);
  counters.dispatches = dispatches_.load(std::memory_order_relaxed);
  counters.retries = retries_.load(std::memory_order_relaxed);
  counters.steals = steals_.load(std::memory_order_relaxed);
  counters.worker_failures =
      worker_failures_.load(std::memory_order_relaxed);
  counters.partials_merged =
      partials_merged_.load(std::memory_order_relaxed);
  counters.partials_streamed =
      partials_streamed_.load(std::memory_order_relaxed);
  counters.duplicate_partials =
      duplicate_partials_.load(std::memory_order_relaxed);
  counters.partial_cache_hits =
      partial_cache_hits_.load(std::memory_order_relaxed);
  counters.partial_cache_misses =
      partial_cache_misses_.load(std::memory_order_relaxed);
  counters.jobs_in_flight =
      jobs_in_flight_.load(std::memory_order_relaxed);
  counters.peak_resident_partials =
      peak_resident_partials_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace gdlog
