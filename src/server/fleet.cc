#include "server/fleet.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <utility>

#include "gdatalog/export.h"
#include "gdatalog/shard.h"
#include "obs/trace.h"
#include "server/options.h"
#include "util/json.h"

namespace gdlog {

namespace {

/// The shard-plan coordinates every fleet request carries. All of them are
/// inputs of the pure plan function, so a worker given the same
/// coordinates recomputes the coordinator's plan exactly.
struct PlanCoordinates {
  size_t shards = 1;
  size_t prefix_depth = 0;
  ShardAssignment assignment = ShardAssignment::kWeighted;
};

Result<PlanCoordinates> ReadPlanCoordinates(const JsonValue& body,
                                            size_t default_shards) {
  PlanCoordinates plan;
  GDLOG_ASSIGN_OR_RETURN(uint64_t shards,
                         OptionalU64(body, "shards", default_shards));
  if (shards < 1) {
    return Status::InvalidArgument("'shards' must be a positive integer");
  }
  plan.shards = static_cast<size_t>(shards);
  GDLOG_ASSIGN_OR_RETURN(uint64_t depth,
                         OptionalU64(body, "prefix_depth", 0));
  plan.prefix_depth = static_cast<size_t>(depth);
  GDLOG_ASSIGN_OR_RETURN(
      std::string assignment,
      OptionalString(body, "assignment",
                     ShardAssignmentName(ShardAssignment::kWeighted)));
  GDLOG_ASSIGN_OR_RETURN(plan.assignment, ParseShardAssignment(assignment));
  return plan;
}

/// The /v1/shards request a coordinator sends for `indices`. The program
/// travels inline (spec fields, not the coordinator-local id): the
/// worker's registry registers it idempotently, so only the first request
/// per worker pays an engine build, and a worker that has never seen the
/// program needs no separate provisioning step. The registry keeps
/// spec.db_text current across PATCH deltas, which is what makes shipping
/// the spec equivalent to shipping the coordinator's database.
std::string ShardRequestBody(const ProgramSpec& spec,
                             const ChaseOptions& chase,
                             const PlanCoordinates& plan,
                             const std::vector<size_t>& indices) {
  JsonWriter json;
  json.BeginObject();
  json.KV("program", spec.program_text);
  if (!spec.db_text.empty()) json.KV("db", spec.db_text);
  json.KV("grounder", GrounderWireName(spec.grounder));
  if (spec.extensions) {
    json.KV("extensions", true);
    if (spec.normalgrid_max_cells >= 0) {
      json.KV("normalgrid_max_cells",
              static_cast<long long>(spec.normalgrid_max_cells));
    }
  }
  // Exactly the result-affecting options (the fingerprint fields), stated
  // explicitly so a worker with different built-in defaults still explores
  // the coordinator's space. num_threads stays a worker-local choice —
  // thread count never changes results.
  json.Key("options").BeginObject();
  json.KV("max_outcomes", static_cast<long long>(chase.max_outcomes));
  json.KV("max_depth", static_cast<long long>(chase.max_depth));
  json.KV("support_limit", static_cast<long long>(chase.support_limit));
  // %.17g round-trips through strtod, so the worker's double — and hence
  // its serialized meta — matches the coordinator's bit for bit.
  json.KV("min_path_prob", chase.min_path_prob);
  json.KV("trigger_shuffle_seed",
          static_cast<long long>(chase.trigger_shuffle_seed));
  json.KV("solver_max_nodes",
          static_cast<long long>(chase.solver_max_nodes));
  json.EndObject();
  json.KV("shards", static_cast<long long>(plan.shards));
  json.KV("prefix_depth", static_cast<long long>(plan.prefix_depth));
  json.KV("assignment", ShardAssignmentName(plan.assignment));
  json.Key("shard_indices").BeginArray();
  for (size_t index : indices) json.Int(static_cast<long long>(index));
  json.EndArray();
  json.EndObject();
  return json.str();
}

struct FetchedPartial {
  PartialSpace partial;
  ShardPartialMeta meta;
};

/// One worker exchange: POST the shard group, bounded as a whole by
/// `deadline_ms`, and parse the NDJSON partial per requested index. Any
/// failure — refused connection, non-200, deadline expiry (the straggler
/// case: the per-wait budget shrinks as the deadline nears, so a trickling
/// worker cannot stretch the exchange), short or malformed response —
/// surfaces as a non-OK Status and the caller re-dispatches the group.
Result<std::vector<FetchedPartial>> FetchGroup(
    const std::string& address, const std::string& request_body,
    const std::vector<size_t>& indices, int deadline_ms,
    const std::string& trace, const Interner& interner) {
  GDLOG_ASSIGN_OR_RETURN(auto host_port, ParseHostPort(address));
  GDLOG_ASSIGN_OR_RETURN(
      HttpClient client,
      HttpClient::Connect(host_port.first, host_port.second, deadline_ms));
  HttpClient::HeaderList extra_headers;
  if (!trace.empty()) extra_headers.emplace_back(kTraceHeader, trace);
  GDLOG_ASSIGN_OR_RETURN(
      HttpResponse response,
      client.RequestWithDeadline("POST", "/v1/shards", request_body,
                                 deadline_ms, extra_headers));
  if (response.status != 200) {
    return Status::Internal("worker " + address + " returned HTTP " +
                            std::to_string(response.status));
  }
  std::vector<FetchedPartial> fetched;
  fetched.reserve(indices.size());
  size_t pos = 0;
  while (pos < response.body.size()) {
    size_t eol = response.body.find('\n', pos);
    if (eol == std::string::npos) eol = response.body.size();
    std::string_view line(response.body.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    FetchedPartial one;
    GDLOG_ASSIGN_OR_RETURN(one.partial,
                           PartialSpaceFromJson(line, interner, &one.meta));
    fetched.push_back(std::move(one));
  }
  if (fetched.size() != indices.size()) {
    return Status::Internal("worker " + address + " returned " +
                            std::to_string(fetched.size()) +
                            " partials for " +
                            std::to_string(indices.size()) + " shards");
  }
  for (size_t i = 0; i < fetched.size(); ++i) {
    if (fetched[i].meta.shard_index != indices[i]) {
      return Status::Internal("worker " + address +
                              " returned partials out of order");
    }
  }
  return fetched;
}

}  // namespace

Result<std::pair<std::string, int>> ParseHostPort(
    const std::string& address) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return Status::InvalidArgument("worker address must be host:port; got '" +
                                   address + "'");
  }
  std::string port_text = address.substr(colon + 1);
  if (port_text.find_first_not_of("0123456789") != std::string::npos ||
      port_text.size() > 5) {
    return Status::InvalidArgument("bad worker port in '" + address + "'");
  }
  int port = std::atoi(port_text.c_str());
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument("bad worker port in '" + address + "'");
  }
  return std::make_pair(address.substr(0, colon), port);
}

HttpResponse FleetService::HandleShards(const HttpRequest& request) {
  shard_requests_.fetch_add(1, std::memory_order_relaxed);
  auto body = ParseBody(request);
  if (!body.ok()) return ErrorResponse(body.status());

  // Program resolution: inline spec (registered idempotently — the
  // coordinator's distribution path) or a worker-local id.
  std::shared_ptr<const ProgramRegistry::Entry> entry;
  if (body->Find("program") != nullptr) {
    auto spec = ParseProgramSpec(*body);
    if (!spec.ok()) return ErrorResponse(spec.status());
    auto info = registry_->Register(std::move(*spec));
    if (!info.ok()) return ErrorResponse(info.status());
    entry = registry_->Find(info->id);
  } else {
    auto id = RequiredString(*body, "program_id");
    if (!id.ok()) return ErrorResponse(id.status());
    entry = registry_->Find(*id);
    if (entry == nullptr) {
      return ErrorResponse(Status::NotFound("unknown program id: " + *id));
    }
  }
  if (entry == nullptr) {
    return ErrorResponse(Status::Internal("program entry vanished"));
  }
  // Optional pinning: a caller naming revision/lineage means "this exact
  // database state"; refuse rather than silently explore another one.
  if (const JsonValue* revision = body->Find("revision")) {
    auto want = revision->NumberAsInt();
    if (!want.ok() || *want < 0 ||
        static_cast<uint64_t>(*want) != entry->revision) {
      return ErrorResponse(Status::AlreadyExists(
          "revision mismatch: worker has " +
          std::to_string(entry->revision)));
    }
  }
  if (const JsonValue* lineage = body->Find("lineage")) {
    if (!lineage->is_string() ||
        lineage->string_value() != entry->lineage_digest) {
      return ErrorResponse(
          Status::AlreadyExists("lineage mismatch: worker has '" +
                                entry->lineage_digest + "'"));
    }
  }

  auto chase = ReadChaseOptions(*body, options_.default_chase);
  if (!chase.ok()) return ErrorResponse(chase.status());
  // "shards" is effectively required here: the 0 default fails the >= 1
  // check, so a request without it is rejected with a named error.
  auto plan_coords = ReadPlanCoordinates(*body, /*default_shards=*/0);
  if (!plan_coords.ok()) return ErrorResponse(plan_coords.status());
  const JsonValue* indices_field = body->Find("shard_indices");
  if (indices_field == nullptr || !indices_field->is_array() ||
      indices_field->array().empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "'shard_indices' must be a non-empty array of shard indices"));
  }
  std::vector<size_t> indices;
  for (const JsonValue& index : indices_field->array()) {
    auto value = index.is_number() ? index.NumberAsInt()
                                   : Result<long long>(Status::InvalidArgument(
                                         "bad shard index"));
    if (!value.ok() || *value < 0 ||
        static_cast<uint64_t>(*value) >= plan_coords->shards) {
      return ErrorResponse(Status::InvalidArgument(
          "'shard_indices' entries must be integers in [0, shards)"));
    }
    indices.push_back(static_cast<size_t>(*value));
  }

  auto plan = entry->engine.chase().PlanShards(
      *chase, plan_coords->shards, plan_coords->prefix_depth,
      plan_coords->assignment);
  if (!plan.ok()) return ErrorResponse(plan.status());

  std::string ndjson;
  for (size_t index : indices) {
    auto partial = entry->engine.chase().ExploreShard(*plan, index, *chase);
    if (!partial.ok()) return ErrorResponse(partial.status());
    ShardPartialMeta meta = MakeShardPartialMeta(*plan, index, *chase);
    ndjson += PartialSpaceToJson(*partial, meta,
                                 entry->engine.program().interner());
    ndjson += '\n';
    shards_explored_.fetch_add(1, std::memory_order_relaxed);
  }
  HttpResponse response = JsonResponse(200, std::move(ndjson));
  response.content_type = "application/x-ndjson";
  return response;
}

HttpResponse FleetService::HandleJobs(const HttpRequest& request,
                                      const std::string& trace) {
  jobs_.fetch_add(1, std::memory_order_relaxed);
  auto fail = [&](const Status& status) {
    jobs_failed_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(status);
  };
  auto body = ParseBody(request);
  if (!body.ok()) return fail(body.status());
  auto id = RequiredString(*body, "program_id");
  if (!id.ok()) return fail(id.status());
  auto entry = registry_->Find(*id);
  if (entry == nullptr) {
    return fail(Status::NotFound("unknown program id: " + *id));
  }
  auto chase = ReadChaseOptions(*body, options_.default_chase);
  if (!chase.ok()) return fail(chase.status());

  std::vector<std::string> workers = options_.default_workers;
  if (const JsonValue* list = body->Find("workers")) {
    if (!list->is_array()) {
      return fail(Status::InvalidArgument(
          "'workers' must be an array of host:port strings"));
    }
    workers.clear();
    for (const JsonValue& worker : list->array()) {
      if (!worker.is_string()) {
        return fail(Status::InvalidArgument(
            "'workers' must be an array of host:port strings"));
      }
      workers.push_back(worker.string_value());
    }
  }
  if (workers.empty()) {
    return fail(Status::InvalidArgument(
        "no workers: pass 'workers' or start gdlogd with --fleet-workers"));
  }
  for (const std::string& worker : workers) {
    auto parsed = ParseHostPort(worker);
    if (!parsed.ok()) return fail(parsed.status());
  }

  auto plan_coords =
      ReadPlanCoordinates(*body, /*default_shards=*/workers.size());
  if (!plan_coords.ok()) return fail(plan_coords.status());
  auto deadline = OptionalU64(*body, "deadline_ms",
                              static_cast<uint64_t>(options_.deadline_ms));
  if (!deadline.ok()) return fail(deadline.status());
  int deadline_ms =
      static_cast<int>(std::min<uint64_t>(*deadline, 3'600'000));
  if (deadline_ms < 1) deadline_ms = 1;

  auto include_outcomes = OptionalBool(*body, "include_outcomes", false);
  auto include_models = OptionalBool(*body, "include_models", false);
  auto include_events = OptionalBool(*body, "include_events", false);
  auto include_spans = OptionalBool(*body, "spans", false);
  if (!include_outcomes.ok()) return fail(include_outcomes.status());
  if (!include_models.ok()) return fail(include_models.status());
  if (!include_events.ok()) return fail(include_events.status());
  if (!include_spans.ok()) return fail(include_spans.status());

  // The merged space is bit-identical to a single-process run, so the job
  // shares the *same* fingerprint — and hence cache entries — with /query:
  // a job warms the cache for queries and vice versa.
  std::string key = InferenceCache::Fingerprint(
      entry->id, entry->revision, entry->lineage_digest, *chase);
  JobSpans spans;
  bool computed = false;
  auto space = cache_->LookupOrCompute(key, [&]() {
    computed = true;
    return RunJob(*entry, *chase, plan_coords->shards,
                  plan_coords->prefix_depth, plan_coords->assignment,
                  workers, deadline_ms, trace, &spans);
  });
  if (!space.ok()) return fail(space.status());
  if (computed) {
    // One line per computed job stitches the coordinator's view to the
    // workers' access logs via the shared trace id. Timings are wall time
    // — diagnostics, not results.
    std::fprintf(stderr,
                 "gdlogd: job trace=%s plan_ms=%.3f dispatch_ms=%.3f "
                 "merge_ms=%.3f groups=%zu\n",
                 trace.empty() ? "-" : trace.c_str(), spans.plan_ns / 1e6,
                 spans.dispatch_ns / 1e6, spans.merge_ns / 1e6,
                 spans.groups.size());
  }

  JsonExportOptions json_options;
  json_options.include_outcomes = *include_outcomes;
  json_options.include_models = *include_models;
  json_options.include_events = *include_events;
  // Byte-identical to /query's full-document body (and so to
  // `gdlog_cli --json`) for the same program/DB/options.
  std::string doc = OutcomeSpaceToJson(**space, entry->engine.translated(),
                                       entry->engine.program().interner(),
                                       json_options);
  // The span block is strictly opt-in ("spans": true) and only exists when
  // this request actually computed the job (a cache hit ran nothing), so
  // the default body keeps the byte-identity contract above.
  if (*include_spans && computed) {
    JsonWriter json;
    json.BeginObject();
    if (!trace.empty()) json.KV("trace", trace);
    json.KV("plan_ms", spans.plan_ns / 1e6);
    json.KV("dispatch_ms", spans.dispatch_ns / 1e6);
    json.KV("merge_ms", spans.merge_ns / 1e6);
    json.Key("groups").BeginArray();
    for (const JobSpans::Group& group : spans.groups) {
      json.BeginObject();
      json.KV("group", static_cast<long long>(group.group));
      json.KV("shards", static_cast<long long>(group.shards));
      json.KV("worker", group.worker);
      json.KV("attempts", static_cast<long long>(group.attempts));
      json.KV("time_ms", group.time_ns / 1e6);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    doc.insert(doc.size() - 1, ",\"spans\":" + json.str());
  }
  return JsonResponse(200, doc + "\n");
}

Result<OutcomeSpace> FleetService::RunJob(
    const ProgramRegistry::Entry& entry, const ChaseOptions& chase,
    size_t num_shards, size_t prefix_depth, ShardAssignment assignment,
    const std::vector<std::string>& workers, int deadline_ms,
    const std::string& trace, JobSpans* spans) {
  const uint64_t plan_start_ns = MonotonicNanos();
  GDLOG_ASSIGN_OR_RETURN(
      ShardPlan plan,
      entry.engine.chase().PlanShards(chase, num_shards, prefix_depth,
                                      assignment));
  if (spans != nullptr) spans->plan_ns = MonotonicNanos() - plan_start_ns;
  const Interner& interner = *entry.engine.program().interner();

  // Shard groups, one per worker (modular when shards outnumber workers).
  // The weighted assignment already balanced mass across *shards*, so the
  // grouping needs no weighting of its own.
  const size_t num_groups = std::min(workers.size(), plan.num_shards);
  std::vector<std::vector<size_t>> groups(num_groups);
  for (size_t shard = 0; shard < plan.num_shards; ++shard) {
    groups[shard % num_groups].push_back(shard);
  }
  // Workers recompute the plan from these coordinates; the resolved
  // prefix_depth is sent (not the request's, which may have been 0 =
  // auto) so workers skip the auto-deepening search and provably expand
  // the same frontier.
  PlanCoordinates coords;
  coords.shards = plan.num_shards;
  coords.prefix_depth = plan.prefix_depth;
  coords.assignment = plan.assignment;
  std::vector<std::string> bodies(num_groups);
  for (size_t group = 0; group < num_groups; ++group) {
    bodies[group] =
        ShardRequestBody(entry.spec, chase, coords, groups[group]);
  }

  struct GroupState {
    bool done = false;
    std::vector<FetchedPartial> partials;
    Status last_error = Status::OK();
    size_t attempts = 0;
    size_t final_worker = 0;
    uint64_t time_ns = 0;
  };
  std::vector<GroupState> states(num_groups);
  std::vector<char> healthy(workers.size(), 1);
  const uint64_t dispatch_start_ns = MonotonicNanos();

  auto attempt = [&](size_t group, size_t worker) {
    dispatches_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t start_ns = MonotonicNanos();
    auto fetched = FetchGroup(workers[worker], bodies[group], groups[group],
                              deadline_ms, trace, interner);
    const uint64_t elapsed_ns = MonotonicNanos() - start_ns;
    dispatch_hist_.RecordNanos(elapsed_ns);
    states[group].attempts += 1;
    states[group].time_ns += elapsed_ns;
    if (!fetched.ok()) {
      worker_failures_.fetch_add(1, std::memory_order_relaxed);
      healthy[worker] = 0;
      states[group].last_error = fetched.status();
      return;
    }
    states[group].final_worker = worker;
    states[group].partials = std::move(*fetched);
    states[group].done = true;
  };

  // First wave: every group to its own worker, concurrently. Threads touch
  // disjoint states[group]/healthy[worker] slots, so no locking is needed.
  {
    std::vector<std::thread> threads;
    threads.reserve(num_groups);
    for (size_t group = 0; group < num_groups; ++group) {
      threads.emplace_back([&, group]() { attempt(group, group); });
    }
    for (std::thread& thread : threads) thread.join();
  }

  // Re-dispatch failed groups — dead workers, 5xx, stragglers past the
  // deadline — to the remaining healthy workers (including any spares the
  // first wave never used), each worker at most once per group.
  for (size_t group = 0; group < num_groups; ++group) {
    if (states[group].done) continue;
    for (size_t offset = 1; offset <= workers.size() && !states[group].done;
         ++offset) {
      size_t worker = (group + offset) % workers.size();
      if (!healthy[worker]) continue;
      retries_.fetch_add(1, std::memory_order_relaxed);
      attempt(group, worker);
    }
    if (!states[group].done) {
      return Status::BudgetExhausted(
          "fleet job failed: no healthy worker left for shard group " +
          std::to_string(group) + " (last error: " +
          states[group].last_error.message() + ")");
    }
  }
  const uint64_t merge_start_ns = MonotonicNanos();
  if (spans != nullptr) {
    spans->dispatch_ns = merge_start_ns - dispatch_start_ns;
    spans->groups.reserve(num_groups);
    for (size_t group = 0; group < num_groups; ++group) {
      JobSpans::Group span;
      span.group = group;
      span.shards = groups[group].size();
      span.worker = workers[states[group].final_worker];
      span.attempts = states[group].attempts;
      span.time_ns = states[group].time_ns;
      spans->groups.push_back(std::move(span));
    }
  }

  // Coverage + compatibility: every shard exactly once, every partial
  // produced under this exact plan and these exact budgets. A mismatch
  // means a worker disagreed about the pure plan function — merging would
  // silently double- or under-count mass.
  ShardPartialMeta expected = MakeShardPartialMeta(plan, 0, chase);
  std::vector<PartialSpace> partials(plan.num_shards);
  std::vector<char> seen(plan.num_shards, 0);
  for (GroupState& state : states) {
    for (FetchedPartial& fetched : state.partials) {
      const ShardPartialMeta& meta = fetched.meta;
      if (!meta.SamePlanAndBudgets(expected) ||
          meta.shard_index >= plan.num_shards) {
        return Status::Internal(
            "worker partial was produced under a different shard plan or "
            "different budgets");
      }
      if (seen[meta.shard_index]) {
        return Status::Internal("duplicate partial for shard " +
                                std::to_string(meta.shard_index));
      }
      seen[meta.shard_index] = 1;
      partials[meta.shard_index] = std::move(fetched.partial);
    }
  }
  for (size_t shard = 0; shard < plan.num_shards; ++shard) {
    if (!seen[shard]) {
      return Status::Internal("missing partial for shard " +
                              std::to_string(shard));
    }
  }
  partials_merged_.fetch_add(plan.num_shards, std::memory_order_relaxed);
  auto merged = MergePartialSpaces(std::move(partials), chase.max_outcomes);
  if (spans != nullptr) spans->merge_ns = MonotonicNanos() - merge_start_ns;
  return merged;
}

FleetService::Counters FleetService::counters() const {
  Counters counters;
  counters.shard_requests =
      shard_requests_.load(std::memory_order_relaxed);
  counters.shards_explored =
      shards_explored_.load(std::memory_order_relaxed);
  counters.jobs = jobs_.load(std::memory_order_relaxed);
  counters.jobs_failed = jobs_failed_.load(std::memory_order_relaxed);
  counters.dispatches = dispatches_.load(std::memory_order_relaxed);
  counters.retries = retries_.load(std::memory_order_relaxed);
  counters.worker_failures =
      worker_failures_.load(std::memory_order_relaxed);
  counters.partials_merged =
      partials_merged_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace gdlog
