#ifndef GDLOG_SERVER_HTTP_H_
#define GDLOG_SERVER_HTTP_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/socket.h"
#include "util/status.h"

namespace gdlog {

/// One parsed HTTP/1.1 request. Targets are matched verbatim (the service
/// layer defines no query strings); bodies are length-delimited
/// (Transfer-Encoding is answered with 501).
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (verbatim, case-sensitive).
  std::string target;  ///< e.g. "/query".
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;

  /// First header with the given name (case-insensitive), or nullptr.
  const std::string* FindHeader(std::string_view name) const;
};

/// What a handler returns. The server adds framing headers (Content-Length,
/// Connection) itself.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers, written verbatim after the framing headers
  /// (e.g. the Deprecation marker on legacy endpoint aliases).
  std::vector<std::pair<std::string, std::string>> headers;
  /// Force-close the connection after this response.
  bool close = false;

  /// One streamed chunk sink: each call frames one chunk on the wire.
  using ChunkSink = std::function<Status(std::string_view chunk)>;
  /// When set, the response body streams instead of being taken from
  /// `body` (which is ignored): the server writes the head with
  /// `Transfer-Encoding: chunked`, then runs this producer, framing every
  /// emitted chunk as it is produced. A producer error — or a failed sink
  /// write — aborts the connection WITHOUT the terminal chunk, so the
  /// peer always sees a truncated stream rather than a complete-looking
  /// response. Streaming responses assume an HTTP/1.1 peer (ours are).
  std::function<Status(const ChunkSink& emit)> stream;

  /// Runs `stream` to completion into `body` and clears it — for
  /// in-process callers that bypass the socket layer. No-op when the
  /// response is not streamed; on producer error the response is the
  /// truncation the wire peer would have seen, i.e. unusable.
  Status Drain();

  /// First extra header with the given name (case-insensitive), or
  /// nullptr. (Client side: Request() collects response headers here.)
  const std::string* FindHeader(std::string_view name) const;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// The canonical reason phrase for a status code ("OK", "Not Found", ...).
std::string_view HttpStatusReason(int status);

/// The one error-body shape every layer emits —
/// {"error":{"code":...,"message":...}} plus a trailing newline — so
/// protocol-level rejections (server framing) and service-level ones
/// parse identically on the client.
std::string HttpErrorBody(std::string_view code, std::string_view message);

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned (query the bound port via HttpServer::port()).
  int port = 0;
  /// Connection-serving workers on the util/thread_pool; one worker serves
  /// one connection at a time, so this is also the concurrent-connection
  /// capacity. 0 = max(4, hardware threads).
  size_t workers = 0;
  /// Request line + headers larger than this are answered with 431.
  size_t max_header_bytes = 64 * 1024;
  /// Bodies larger than this are answered with 413 (untrusted input).
  size_t max_body_bytes = 32ull * 1024 * 1024;
  /// How long a keep-alive connection may sit idle between requests.
  int idle_timeout_ms = 30'000;
  /// Per-poll bound on mid-request reads and on writes.
  int io_timeout_ms = 30'000;
};

/// A minimal HTTP/1.1 server over util/socket: keep-alive, length-framed
/// bodies, request-size limits, and graceful drain. Connections are served
/// on the work-stealing thread pool; Serve() runs the accept loop on the
/// calling thread until Shutdown() — which is async-signal-safe, so a
/// SIGTERM handler can call it directly — then stops accepting, lets
/// in-flight requests finish, closes every idle connection, and returns.
class HttpServer {
 public:
  /// Binds the listening socket (so port() is valid immediately) and
  /// spawns the worker pool. The handler runs on pool workers and must be
  /// thread-safe; it must not throw.
  static Result<HttpServer> Create(HttpServerOptions options,
                                   HttpHandler handler);

  HttpServer(HttpServer&&) noexcept;
  HttpServer& operator=(HttpServer&&) noexcept;
  /// The server must not be destroyed while Serve() is running; call
  /// Shutdown() and join the serving thread first.
  ~HttpServer();

  /// The bound port.
  int port() const;

  /// Accept loop: blocks until Shutdown(), then drains and returns. Only
  /// fatal listener errors produce a non-OK Status.
  Status Serve();

  /// Requests shutdown: stop accepting, finish in-flight requests, wake
  /// idle keep-alive connections. Async-signal-safe (an atomic store and a
  /// pipe write); callable from any thread, idempotent.
  void Shutdown();

 private:
  struct Impl;
  explicit HttpServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// A tiny blocking HTTP/1.1 client over one keep-alive connection — enough
/// for the load generator (tools/gdlog_load), the fleet coordinator, and
/// the server tests. Reads length-framed and chunked responses; requests
/// are always length-framed.
class HttpClient {
 public:
  static Result<HttpClient> Connect(const std::string& host, int port,
                                    int timeout_ms = 10'000);

  HttpClient(HttpClient&&) noexcept = default;
  HttpClient& operator=(HttpClient&&) noexcept = default;

  /// Extra request headers ({name, value} pairs, written verbatim) — how a
  /// coordinator forwards X-Gdlog-Trace to its workers.
  using HeaderList = std::vector<std::pair<std::string, std::string>>;

  /// Sends one request and reads the response. `status` comes back in
  /// HttpResponse::status, the payload in body. After a response carrying
  /// "Connection: close" the client is dead; reconnect to continue.
  Result<HttpResponse> Request(std::string_view method,
                               std::string_view target,
                               std::string_view body = {},
                               std::string_view content_type =
                                   "application/json",
                               const HeaderList& extra_headers = {});

  /// Like Request(), but bounds the *whole* exchange by `deadline_ms`:
  /// every socket wait gets only the remaining budget, so a trickling
  /// straggler cannot stretch the request past the deadline byte by byte.
  /// Expiry surfaces as kBudgetExhausted — the same code the engine's
  /// timeout-kill machinery uses — so callers retry uniformly.
  Result<HttpResponse> RequestWithDeadline(std::string_view method,
                                           std::string_view target,
                                           std::string_view body,
                                           int deadline_ms,
                                           const HeaderList& extra_headers =
                                               {});

  /// Receives one newline-terminated body line, newline stripped, while
  /// the exchange is still in flight. A non-OK return aborts the exchange
  /// (the connection is dead afterwards).
  using LineSink = std::function<Status(std::string_view line)>;

  /// Like RequestWithDeadline(), but delivers a 200 response's body
  /// incrementally: `on_line` fires once per line as bytes arrive, for
  /// both chunked and length-framed bodies, and the returned response has
  /// an empty `body`. Non-200 responses are buffered whole instead (the
  /// error envelope stays intact) and `on_line` never fires. A chunked
  /// stream the server abandons before the terminal chunk surfaces as
  /// kBudgetExhausted — the same retryable code a deadline expiry uses —
  /// never as a successfully completed response. A non-null `cancel` is
  /// polled between read slices (≤ 100 ms); once set, the exchange aborts
  /// with kBudgetExhausted("exchange canceled"). Requires a positive
  /// deadline.
  Result<HttpResponse> RequestStreamingLines(
      std::string_view method, std::string_view target, std::string_view body,
      int deadline_ms, const HeaderList& extra_headers,
      const LineSink& on_line, const std::atomic<bool>* cancel = nullptr);

 private:
  HttpClient(Connection conn, int timeout_ms)
      : conn_(std::move(conn)), timeout_ms_(timeout_ms) {}

  Result<HttpResponse> RequestInternal(std::string_view method,
                                       std::string_view target,
                                       std::string_view body,
                                       std::string_view content_type,
                                       int deadline_ms,
                                       const HeaderList& extra_headers,
                                       const LineSink* on_line = nullptr,
                                       const std::atomic<bool>* cancel =
                                           nullptr);

  Connection conn_;
  int timeout_ms_;
  std::string buf_;  ///< carry-over bytes between pipelined responses
  bool closed_ = false;
};

}  // namespace gdlog

#endif  // GDLOG_SERVER_HTTP_H_
