#include "server/options.h"

#include <algorithm>
#include <utility>

#include "util/thread_pool.h"

namespace gdlog {

Result<std::string> RequiredString(const JsonValue& obj,
                                   std::string_view key) {
  const JsonValue* field = obj.Find(key);
  if (field == nullptr || !field->is_string()) {
    return Status::InvalidArgument("missing string field '" +
                                   std::string(key) + "'");
  }
  return field->string_value();
}

Result<std::string> OptionalString(const JsonValue& obj, std::string_view key,
                                   std::string fallback) {
  const JsonValue* field = obj.Find(key);
  if (field == nullptr) return fallback;
  if (!field->is_string()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a string");
  }
  return field->string_value();
}

Result<bool> OptionalBool(const JsonValue& obj, std::string_view key,
                          bool fallback) {
  const JsonValue* field = obj.Find(key);
  if (field == nullptr) return fallback;
  if (!field->is_bool()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a boolean");
  }
  return field->bool_value();
}

Result<uint64_t> OptionalU64(const JsonValue& obj, std::string_view key,
                             uint64_t fallback) {
  const JsonValue* field = obj.Find(key);
  if (field == nullptr) return fallback;
  if (!field->is_number()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a non-negative integer");
  }
  auto value = field->NumberAsInt();
  if (!value.ok() || *value < 0) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a non-negative integer");
  }
  return static_cast<uint64_t>(*value);
}

Result<double> OptionalDouble(const JsonValue& obj, std::string_view key,
                              double fallback) {
  const JsonValue* field = obj.Find(key);
  if (field == nullptr) return fallback;
  if (!field->is_number()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a number");
  }
  return field->NumberAsDouble();
}

Result<JsonValue> ParseBody(const HttpRequest& request) {
  if (request.body.empty()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  auto doc = JsonValue::Parse(request.body);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  return doc;
}

Result<GrounderKind> ParseGrounder(const std::string& name) {
  if (name == "auto") return GrounderKind::kAuto;
  if (name == "simple") return GrounderKind::kSimple;
  if (name == "perfect") return GrounderKind::kPerfect;
  return Status::InvalidArgument(
      "grounder must be auto, simple or perfect; got '" + name + "'");
}

const char* GrounderWireName(GrounderKind kind) {
  switch (kind) {
    case GrounderKind::kAuto: return "auto";
    case GrounderKind::kSimple: return "simple";
    case GrounderKind::kPerfect: return "perfect";
  }
  return "auto";
}

Result<ProgramSpec> ParseProgramSpec(const JsonValue& body) {
  ProgramSpec spec;
  GDLOG_ASSIGN_OR_RETURN(spec.program_text, RequiredString(body, "program"));
  GDLOG_ASSIGN_OR_RETURN(spec.db_text, OptionalString(body, "db", ""));
  GDLOG_ASSIGN_OR_RETURN(std::string grounder_name,
                         OptionalString(body, "grounder", "auto"));
  GDLOG_ASSIGN_OR_RETURN(spec.grounder, ParseGrounder(grounder_name));
  GDLOG_ASSIGN_OR_RETURN(spec.extensions,
                         OptionalBool(body, "extensions", false));
  GDLOG_ASSIGN_OR_RETURN(uint64_t cells,
                         OptionalU64(body, "normalgrid_max_cells",
                                     static_cast<uint64_t>(-1)));
  if (cells != static_cast<uint64_t>(-1)) {
    if (!spec.extensions) {
      return Status::InvalidArgument(
          "normalgrid_max_cells requires extensions");
    }
    spec.normalgrid_max_cells = static_cast<long long>(cells);
  }
  return spec;
}

Result<ChaseOptions> ReadChaseOptions(const JsonValue& body,
                                      ChaseOptions defaults) {
  const JsonValue* obj = body.Find("options");
  ChaseOptions chase = defaults;
  if (obj != nullptr) {
    if (!obj->is_object()) {
      return Status::InvalidArgument("'options' must be an object");
    }
    GDLOG_ASSIGN_OR_RETURN(uint64_t mo, OptionalU64(*obj, "max_outcomes",
                                                    chase.max_outcomes));
    GDLOG_ASSIGN_OR_RETURN(uint64_t md, OptionalU64(*obj, "max_depth",
                                                    chase.max_depth));
    GDLOG_ASSIGN_OR_RETURN(uint64_t sl, OptionalU64(*obj, "support_limit",
                                                    chase.support_limit));
    GDLOG_ASSIGN_OR_RETURN(
        double mpp, OptionalDouble(*obj, "min_path_prob",
                                   chase.min_path_prob));
    GDLOG_ASSIGN_OR_RETURN(
        uint64_t seed, OptionalU64(*obj, "trigger_shuffle_seed",
                                   chase.trigger_shuffle_seed));
    GDLOG_ASSIGN_OR_RETURN(
        uint64_t smn, OptionalU64(*obj, "solver_max_nodes",
                                  chase.solver_max_nodes));
    GDLOG_ASSIGN_OR_RETURN(uint64_t threads,
                           OptionalU64(*obj, "num_threads",
                                       chase.num_threads));
    GDLOG_ASSIGN_OR_RETURN(bool profile,
                           OptionalBool(*obj, "profile", chase.profile));
    if (!(mpp >= 0.0) || mpp > 1.0) {
      return Status::InvalidArgument("min_path_prob must be in [0, 1]");
    }
    chase.max_outcomes = static_cast<size_t>(mo);
    chase.max_depth = static_cast<size_t>(md);
    chase.support_limit = static_cast<size_t>(sl);
    chase.min_path_prob = mpp;
    chase.trigger_shuffle_seed = seed;
    chase.solver_max_nodes = smn;
    // num_threads sizes a real thread pool, so a client must not pick it
    // freely (a huge value aborts the process in std::thread). Clamp to
    // the hardware; thread count never changes results, only speed.
    chase.num_threads = static_cast<size_t>(
        std::min<uint64_t>(threads, ThreadPool::DefaultWorkerCount()));
    // Profiling never changes results (the flag is excluded from the cache
    // fingerprint), it only asks the engine to collect rule timings.
    chase.profile = profile;
  }
  chase.compute_models = true;
  chase.keep_groundings = false;
  return chase;
}

int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kUnsafeProgram:
    case StatusCode::kNotStratified: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kAlreadyExists: return 409;
    case StatusCode::kUnsupported: return 501;
    case StatusCode::kBudgetExhausted: return 503;
    case StatusCode::kInternal: return 500;
  }
  return 500;
}

HttpResponse JsonResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

HttpResponse ErrorResponse(const Status& status) {
  return JsonResponse(HttpStatusFor(status),
                      HttpErrorBody(StatusCodeName(status.code()),
                                    status.message()));
}

HttpResponse MethodNotAllowed(const char* allowed) {
  HttpResponse response = ErrorResponse(Status::InvalidArgument(
      std::string("method not allowed; use ") + allowed));
  response.status = 405;
  return response;
}

}  // namespace gdlog
