#include "server/http.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>

#include "util/json.h"
#include "util/thread_pool.h"

namespace gdlog {

namespace {

bool IEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// How long each poll slice lasts while a connection waits for bytes; the
/// slicing is what lets an idle keep-alive connection notice Shutdown()
/// promptly instead of holding its worker until the idle timeout.
constexpr int kReadSliceMs = 100;

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (IEquals(key, name)) return &value;
  }
  return nullptr;
}

const std::string* HttpResponse::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (IEquals(key, name)) return &value;
  }
  return nullptr;
}

Status HttpResponse::Drain() {
  if (!stream) return Status::OK();
  std::string collected;
  Status status = stream([&collected](std::string_view chunk) -> Status {
    collected.append(chunk);
    return Status::OK();
  });
  stream = nullptr;
  GDLOG_RETURN_IF_ERROR(status);
  body = std::move(collected);
  return Status::OK();
}

std::string HttpErrorBody(std::string_view code, std::string_view message) {
  JsonWriter json;
  json.BeginObject();
  json.Key("error").BeginObject();
  json.KV("code", code);
  json.KV("message", message);
  json.EndObject();
  json.EndObject();
  return json.str() + "\n";
}

std::string_view HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

// ---------------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------------

struct HttpServer::Impl {
  Impl(HttpServerOptions opts, HttpHandler h, ListenSocket l, int rd, int wr)
      : options(std::move(opts)),
        handler(std::move(h)),
        listener(std::move(l)),
        wake_rd(rd),
        wake_wr(wr) {}

  ~Impl() {
    if (wake_rd >= 0) ::close(wake_rd);
    if (wake_wr >= 0) ::close(wake_wr);
  }

  HttpServerOptions options;
  HttpHandler handler;
  ListenSocket listener;
  int wake_rd = -1;
  int wake_wr = -1;
  std::unique_ptr<ThreadPool> pool;
  std::atomic<bool> stop{false};

  enum class ReadEvent { kData, kEof, kTimeout, kStopped, kError };

  /// One sliced read: waits up to `timeout_ms` total, in kReadSliceMs
  /// slices so that — when `interruptible` — a pending Shutdown() cuts the
  /// wait short. `interruptible` is only set while the connection is idle
  /// between requests; mid-request reads run to completion (bounded by the
  /// I/O timeout) so in-flight requests drain gracefully.
  ReadEvent SlicedRead(Connection& conn, std::string* buf, int timeout_ms,
                       bool interruptible) {
    int waited = 0;
    char tmp[16 * 1024];
    for (;;) {
      if (interruptible && stop.load(std::memory_order_relaxed)) {
        return ReadEvent::kStopped;
      }
      int slice = kReadSliceMs;
      if (timeout_ms >= 0) {
        if (waited >= timeout_ms) return ReadEvent::kTimeout;
        slice = std::min(slice, timeout_ms - waited);
      }
      auto n = conn.ReadSome(tmp, sizeof(tmp), slice);
      if (!n.ok()) {
        if (n.status().code() == StatusCode::kBudgetExhausted) {
          waited += slice;
          continue;
        }
        return ReadEvent::kError;
      }
      if (*n == 0) return ReadEvent::kEof;
      buf->append(tmp, *n);
      return ReadEvent::kData;
    }
  }

  struct ReadOutcome {
    enum Kind { kRequest, kClose, kRespondAndClose } kind = kClose;
    HttpResponse error;
  };

  static ReadOutcome RespondAndClose(int status, std::string_view code,
                                     std::string_view message) {
    ReadOutcome out;
    out.kind = ReadOutcome::kRespondAndClose;
    out.error.status = status;
    out.error.body = HttpErrorBody(code, message);
    out.error.close = true;
    return out;
  }

  /// Reads and parses one request; `buf` carries bytes between keep-alive
  /// requests. On kRespondAndClose the framing can no longer be trusted,
  /// so the caller sends the error and drops the connection.
  ReadOutcome ReadRequest(Connection& conn, std::string* buf,
                          HttpRequest* out, bool* keep_alive) {
    size_t header_end;
    for (;;) {
      header_end = buf->find("\r\n\r\n");
      if (header_end != std::string::npos) break;
      if (buf->size() > options.max_header_bytes) {
        return RespondAndClose(431, "HeaderTooLarge",
                               "request header exceeds " +
                                   std::to_string(options.max_header_bytes) +
                                   " bytes");
      }
      bool idle = buf->empty();
      switch (SlicedRead(conn, buf, idle ? options.idle_timeout_ms
                                         : options.io_timeout_ms,
                         /*interruptible=*/idle)) {
        case ReadEvent::kData:
          continue;
        case ReadEvent::kEof:
        case ReadEvent::kStopped:
        case ReadEvent::kError:
          return ReadOutcome{};  // close quietly
        case ReadEvent::kTimeout:
          if (buf->empty()) return ReadOutcome{};  // idle keep-alive expiry
          return RespondAndClose(408, "Timeout", "request timed out");
      }
    }

    // Request line: METHOD SP TARGET SP HTTP/1.x
    std::string_view head(*buf);
    head = head.substr(0, header_end);
    size_t line_end = head.find("\r\n");
    std::string_view request_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);
    size_t sp1 = request_line.find(' ');
    size_t sp2 = sp1 == std::string_view::npos
                     ? std::string_view::npos
                     : request_line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos) {
      return RespondAndClose(400, "BadRequest", "malformed request line");
    }
    std::string_view version = request_line.substr(sp2 + 1);
    if (version.substr(0, 7) != "HTTP/1.") {
      return RespondAndClose(400, "BadRequest",
                             "unsupported protocol version");
    }
    bool http10 = version == "HTTP/1.0";
    out->method = std::string(request_line.substr(0, sp1));
    out->target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
    if (out->method.empty() || out->target.empty() ||
        out->target[0] != '/') {
      return RespondAndClose(400, "BadRequest", "malformed request line");
    }

    // Header fields.
    out->headers.clear();
    size_t pos = line_end == std::string_view::npos ? head.size()
                                                    : line_end + 2;
    while (pos < head.size()) {
      size_t eol = head.find("\r\n", pos);
      if (eol == std::string_view::npos) eol = head.size();
      std::string_view line = head.substr(pos, eol - pos);
      pos = eol + 2;
      size_t colon = line.find(':');
      if (colon == std::string_view::npos || colon == 0) {
        return RespondAndClose(400, "BadRequest", "malformed header field");
      }
      std::string_view name = line.substr(0, colon);
      if (name.find(' ') != std::string_view::npos ||
          name.find('\t') != std::string_view::npos) {
        return RespondAndClose(400, "BadRequest", "malformed header field");
      }
      out->headers.emplace_back(std::string(name),
                                std::string(Trim(line.substr(colon + 1))));
    }

    if (out->FindHeader("transfer-encoding") != nullptr) {
      return RespondAndClose(501, "NotImplemented",
                             "transfer-encoding is not supported");
    }
    // Duplicate Content-Length is the classic request-smuggling vector
    // (an intermediary honoring a different copy than we do desyncs the
    // connection); RFC 9112 §6.3 says reject.
    size_t content_length_headers = 0;
    for (const auto& [name, value] : out->headers) {
      (void)value;
      if (IEquals(name, "content-length")) ++content_length_headers;
    }
    if (content_length_headers > 1) {
      return RespondAndClose(400, "BadRequest",
                             "multiple content-length headers");
    }
    size_t content_length = 0;
    if (const std::string* cl = out->FindHeader("content-length")) {
      if (cl->empty() ||
          cl->find_first_not_of("0123456789") != std::string::npos ||
          cl->size() > 18) {
        return RespondAndClose(400, "BadRequest", "bad content-length");
      }
      content_length = std::stoull(*cl);
    }
    if (content_length > options.max_body_bytes) {
      return RespondAndClose(413, "BodyTooLarge",
                             "request body exceeds " +
                                 std::to_string(options.max_body_bytes) +
                                 " bytes");
    }

    size_t total = header_end + 4 + content_length;
    while (buf->size() < total) {
      switch (SlicedRead(conn, buf, options.io_timeout_ms,
                         /*interruptible=*/false)) {
        case ReadEvent::kData:
          continue;
        case ReadEvent::kEof:
        case ReadEvent::kStopped:
        case ReadEvent::kError:
          return ReadOutcome{};
        case ReadEvent::kTimeout:
          return RespondAndClose(408, "Timeout", "request body timed out");
      }
    }
    out->body = buf->substr(header_end + 4, content_length);
    buf->erase(0, total);

    const std::string* connection = out->FindHeader("connection");
    if (http10) {
      *keep_alive =
          connection != nullptr && IEquals(*connection, "keep-alive");
    } else {
      *keep_alive = connection == nullptr || !IEquals(*connection, "close");
    }
    return ReadOutcome{ReadOutcome::kRequest, HttpResponse{}};
  }

  Status WriteResponse(Connection& conn, const HttpResponse& response,
                       bool keep_alive) {
    std::string head;
    head.reserve(128);
    head += "HTTP/1.1 ";
    head += std::to_string(response.status);
    head += ' ';
    head += HttpStatusReason(response.status);
    head += "\r\nContent-Type: ";
    head += response.content_type;
    head += "\r\nContent-Length: ";
    head += std::to_string(response.body.size());
    for (const auto& [name, value] : response.headers) {
      head += "\r\n";
      head += name;
      head += ": ";
      head += value;
    }
    head += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                       : "\r\nConnection: close\r\n\r\n";
    GDLOG_RETURN_IF_ERROR(conn.WriteAll(head, options.io_timeout_ms));
    return conn.WriteAll(response.body, options.io_timeout_ms);
  }

  /// Streams a chunked response: head, then one wire chunk per producer
  /// emit, then the terminal chunk — which is written ONLY after the
  /// producer completes cleanly. Any producer or write error propagates
  /// without the terminal chunk, so the peer can always distinguish a
  /// truncated stream from a complete one.
  Status WriteStreamedResponse(Connection& conn, const HttpResponse& response,
                               bool keep_alive) {
    std::string head;
    head.reserve(128);
    head += "HTTP/1.1 ";
    head += std::to_string(response.status);
    head += ' ';
    head += HttpStatusReason(response.status);
    head += "\r\nContent-Type: ";
    head += response.content_type;
    head += "\r\nTransfer-Encoding: chunked";
    for (const auto& [name, value] : response.headers) {
      head += "\r\n";
      head += name;
      head += ": ";
      head += value;
    }
    head += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                       : "\r\nConnection: close\r\n\r\n";
    GDLOG_RETURN_IF_ERROR(conn.WriteAll(head, options.io_timeout_ms));
    auto emit = [&](std::string_view chunk) -> Status {
      // An empty chunk would read as the terminal chunk; skip it.
      if (chunk.empty()) return Status::OK();
      char size_line[32];
      int n = std::snprintf(size_line, sizeof(size_line), "%zx\r\n",
                            chunk.size());
      std::string frame;
      frame.reserve(static_cast<size_t>(n) + chunk.size() + 2);
      frame.append(size_line, static_cast<size_t>(n));
      frame.append(chunk);
      frame += "\r\n";
      return conn.WriteAll(frame, options.io_timeout_ms);
    };
    GDLOG_RETURN_IF_ERROR(response.stream(emit));
    return conn.WriteAll("0\r\n\r\n", options.io_timeout_ms);
  }

  void ServeConnection(Connection& conn) {
    std::string buf;
    for (;;) {
      HttpRequest request;
      bool keep_alive = true;
      ReadOutcome outcome = ReadRequest(conn, &buf, &request, &keep_alive);
      if (outcome.kind == ReadOutcome::kClose) return;
      if (outcome.kind == ReadOutcome::kRespondAndClose) {
        WriteResponse(conn, outcome.error, /*keep_alive=*/false);
        return;
      }
      HttpResponse response = handler(request);
      bool close = response.close || !keep_alive ||
                   stop.load(std::memory_order_relaxed);
      Status written =
          response.stream ? WriteStreamedResponse(conn, response, !close)
                          : WriteResponse(conn, response, !close);
      if (!written.ok()) return;
      if (close) return;
    }
  }

  Status Serve() {
    for (;;) {
      if (stop.load(std::memory_order_relaxed)) break;
      auto conn = listener.Accept(wake_rd);
      if (!conn.ok()) return conn.status();
      if (!conn->has_value()) break;  // woken by Shutdown()
      auto shared = std::make_shared<Connection>(std::move(**conn));
      pool->Submit([this, shared](size_t) { ServeConnection(*shared); });
    }
    // Drain: no new connections; in-flight requests finish, idle
    // connections notice the stop flag within one read slice.
    pool->WaitIdle();
    return Status::OK();
  }
};

HttpServer::HttpServer(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
HttpServer::HttpServer(HttpServer&&) noexcept = default;
HttpServer& HttpServer::operator=(HttpServer&&) noexcept = default;
HttpServer::~HttpServer() = default;

Result<HttpServer> HttpServer::Create(HttpServerOptions options,
                                      HttpHandler handler) {
  if (handler == nullptr) {
    return Status::InvalidArgument("null http handler");
  }
  GDLOG_ASSIGN_OR_RETURN(
      ListenSocket listener,
      ListenSocket::BindTcp(options.host, options.port));
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::Internal("cannot create shutdown pipe");
  }
  size_t workers = options.workers != 0
                       ? options.workers
                       : std::max<size_t>(4, ThreadPool::DefaultWorkerCount());
  auto impl = std::make_unique<Impl>(std::move(options), std::move(handler),
                                     std::move(listener), fds[0], fds[1]);
  impl->pool = std::make_unique<ThreadPool>(workers);
  return HttpServer(std::move(impl));
}

int HttpServer::port() const { return impl_->listener.port(); }

Status HttpServer::Serve() { return impl_->Serve(); }

void HttpServer::Shutdown() {
  impl_->stop.store(true, std::memory_order_relaxed);
  // Wake the accept loop. A failed write only matters if the pipe is
  // already gone, in which case Serve() is no longer running anyway.
  [[maybe_unused]] ssize_t rc = ::write(impl_->wake_wr, "x", 1);
}

// ---------------------------------------------------------------------------
// HttpClient
// ---------------------------------------------------------------------------

Result<HttpClient> HttpClient::Connect(const std::string& host, int port,
                                       int timeout_ms) {
  GDLOG_ASSIGN_OR_RETURN(Connection conn,
                         Connection::ConnectTcp(host, port, timeout_ms));
  return HttpClient(std::move(conn), timeout_ms);
}

Result<HttpResponse> HttpClient::Request(std::string_view method,
                                         std::string_view target,
                                         std::string_view body,
                                         std::string_view content_type,
                                         const HeaderList& extra_headers) {
  return RequestInternal(method, target, body, content_type,
                         /*deadline_ms=*/-1, extra_headers);
}

Result<HttpResponse> HttpClient::RequestWithDeadline(
    std::string_view method, std::string_view target, std::string_view body,
    int deadline_ms, const HeaderList& extra_headers) {
  return RequestInternal(method, target, body, "application/json",
                         deadline_ms, extra_headers);
}

Result<HttpResponse> HttpClient::RequestStreamingLines(
    std::string_view method, std::string_view target, std::string_view body,
    int deadline_ms, const HeaderList& extra_headers, const LineSink& on_line,
    const std::atomic<bool>* cancel) {
  if (deadline_ms <= 0) {
    return Status::InvalidArgument(
        "streaming requests require a positive deadline");
  }
  return RequestInternal(method, target, body, "application/json",
                         deadline_ms, extra_headers, &on_line, cancel);
}

Result<HttpResponse> HttpClient::RequestInternal(
    std::string_view method, std::string_view target, std::string_view body,
    std::string_view content_type, int deadline_ms,
    const HeaderList& extra_headers, const LineSink* on_line,
    const std::atomic<bool>* cancel) {
  if (closed_) {
    return Status::Internal("connection closed by server; reconnect");
  }
  const auto start = std::chrono::steady_clock::now();
  // The per-wait budget: the fixed per-read timeout, further capped by
  // whatever remains of the whole-request deadline.
  auto wait_budget = [&]() -> Result<int> {
    if (deadline_ms < 0) return timeout_ms_;
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (elapsed >= deadline_ms) {
      return Status::BudgetExhausted("request deadline exceeded");
    }
    return static_cast<int>(
        std::min<long long>(timeout_ms_, deadline_ms - elapsed));
  };
  std::string request;
  request.reserve(128 + body.size());
  request += method;
  request += ' ';
  request += target;
  request += " HTTP/1.1\r\nHost: gdlog\r\n";
  for (const auto& [name, value] : extra_headers) {
    request += name;
    request += ": ";
    request += value;
    request += "\r\n";
  }
  if (!body.empty()) {
    request += "Content-Type: ";
    request += content_type;
    request += "\r\n";
  }
  request += "Content-Length: ";
  request += std::to_string(body.size());
  request += "\r\n\r\n";
  request += body;
  {
    GDLOG_ASSIGN_OR_RETURN(int budget, wait_budget());
    GDLOG_RETURN_IF_ERROR(conn_.WriteAll(request, budget));
  }

  char tmp[16 * 1024];
  // One deadline-capped read into buf_. With a cancel flag the wait is
  // sliced (≤ kReadSliceMs) so a pending cancellation aborts promptly
  // instead of holding the thread for the full remaining deadline.
  auto read_more = [&]() -> Result<size_t> {
    for (;;) {
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        closed_ = true;
        return Status::BudgetExhausted("exchange canceled");
      }
      GDLOG_ASSIGN_OR_RETURN(int budget, wait_budget());
      int slice = cancel != nullptr ? std::min(budget, kReadSliceMs) : budget;
      auto n = conn_.ReadSome(tmp, sizeof(tmp), slice);
      if (!n.ok()) {
        if (cancel != nullptr &&
            n.status().code() == StatusCode::kBudgetExhausted) {
          continue;  // slice expired; re-check cancel and the deadline
        }
        return n.status();
      }
      if (*n > 0) buf_.append(tmp, *n);
      return *n;
    }
  };

  // Response head.
  size_t header_end;
  for (;;) {
    header_end = buf_.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    GDLOG_ASSIGN_OR_RETURN(size_t n, read_more());
    if (n == 0) return Status::Internal("server closed mid-response");
  }
  std::string_view head(buf_);
  head = head.substr(0, header_end);
  size_t line_end = head.find("\r\n");
  std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (status_line.substr(0, 7) != "HTTP/1." || status_line.size() < 12) {
    return Status::Internal("malformed response status line");
  }
  HttpResponse response;
  response.status = 0;
  for (char c : status_line.substr(9, 3)) {
    if (c < '0' || c > '9') {
      return Status::Internal("malformed response status code");
    }
    response.status = response.status * 10 + (c - '0');
  }
  size_t content_length = 0;
  bool close_after = false;
  bool chunked = false;
  size_t pos = line_end == std::string_view::npos ? head.size()
                                                  : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view name = line.substr(0, colon);
    std::string_view value = Trim(line.substr(colon + 1));
    if (IEquals(name, "content-length")) {
      content_length = 0;
      for (char c : value) {
        if (c < '0' || c > '9') {
          return Status::Internal("malformed content-length");
        }
        content_length = content_length * 10 + size_t(c - '0');
      }
    } else if (IEquals(name, "transfer-encoding")) {
      if (!IEquals(value, "chunked")) {
        return Status::Internal("unsupported transfer-encoding");
      }
      chunked = true;
    } else if (IEquals(name, "content-type")) {
      response.content_type = std::string(value);
    } else if (IEquals(name, "connection")) {
      close_after = IEquals(value, "close");
    } else {
      response.headers.emplace_back(std::string(name), std::string(value));
    }
  }

  // Body. `payload` holds decoded bytes; in streaming mode complete lines
  // are delivered out of it as they arrive instead of accumulating.
  buf_.erase(0, header_end + 4);
  const bool streaming = on_line != nullptr && response.status == 200;
  std::string payload;
  auto deliver = [&]() -> Status {
    size_t line_start = 0;
    for (;;) {
      size_t nl = payload.find('\n', line_start);
      if (nl == std::string::npos) break;
      Status s = (*on_line)(
          std::string_view(payload).substr(line_start, nl - line_start));
      if (!s.ok()) {
        closed_ = true;  // mid-stream abort: framing is unrecoverable
        return s;
      }
      line_start = nl + 1;
    }
    payload.erase(0, line_start);
    return Status::OK();
  };

  if (chunked) {
    // RFC 9112 §7.1 chunked framing. EOF before the terminal chunk is a
    // truncated stream and surfaces as kBudgetExhausted — the retryable
    // class — never as a complete-looking response.
    auto truncated = [&]() -> Status {
      closed_ = true;
      return Status::BudgetExhausted(
          "truncated chunked response: server closed before terminal chunk");
    };
    auto need = [&](size_t want) -> Status {
      while (buf_.size() < want) {
        auto n = read_more();
        if (!n.ok()) {
          closed_ = true;
          return n.status();
        }
        if (*n == 0) return truncated();
      }
      return Status::OK();
    };
    for (;;) {
      size_t eol;
      for (;;) {
        eol = buf_.find("\r\n");
        if (eol != std::string::npos) break;
        if (buf_.size() > 1024) {
          closed_ = true;
          return Status::Internal("malformed chunk size line");
        }
        GDLOG_RETURN_IF_ERROR(need(buf_.size() + 1));
      }
      size_t chunk_size = 0;
      bool any_digit = false;
      for (size_t i = 0; i < eol; ++i) {
        char c = buf_[i];
        if (c == ';') break;  // chunk extension: ignored
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else if (c >= 'A' && c <= 'F') {
          digit = c - 'A' + 10;
        } else {
          closed_ = true;
          return Status::Internal("malformed chunk size");
        }
        if (chunk_size > (size_t{1} << 40)) {
          closed_ = true;
          return Status::Internal("chunk size too large");
        }
        chunk_size = chunk_size * 16 + static_cast<size_t>(digit);
        any_digit = true;
      }
      if (!any_digit) {
        closed_ = true;
        return Status::Internal("malformed chunk size");
      }
      buf_.erase(0, eol + 2);
      if (chunk_size == 0) break;
      GDLOG_RETURN_IF_ERROR(need(chunk_size + 2));
      payload.append(buf_, 0, chunk_size);
      if (buf_[chunk_size] != '\r' || buf_[chunk_size + 1] != '\n') {
        closed_ = true;
        return Status::Internal("malformed chunk terminator");
      }
      buf_.erase(0, chunk_size + 2);
      if (streaming) GDLOG_RETURN_IF_ERROR(deliver());
    }
    // Trailer section: discard fields, stop at the blank line.
    for (;;) {
      size_t eol;
      for (;;) {
        eol = buf_.find("\r\n");
        if (eol != std::string::npos) break;
        GDLOG_RETURN_IF_ERROR(need(buf_.size() + 1));
      }
      bool blank = eol == 0;
      buf_.erase(0, eol + 2);
      if (blank) break;
    }
  } else {
    size_t remaining = content_length;
    for (;;) {
      size_t take = std::min(remaining, buf_.size());
      payload.append(buf_, 0, take);
      buf_.erase(0, take);
      remaining -= take;
      if (streaming) GDLOG_RETURN_IF_ERROR(deliver());
      if (remaining == 0) break;
      auto n = read_more();
      if (!n.ok()) {
        closed_ = true;
        return n.status();
      }
      if (*n == 0) {
        closed_ = true;
        return Status::Internal("server closed mid-body");
      }
    }
  }

  if (streaming) {
    if (!payload.empty()) {
      // Body without a trailing newline: deliver the final line as-is.
      Status s = (*on_line)(payload);
      if (!s.ok()) {
        closed_ = true;
        return s;
      }
    }
  } else {
    response.body = std::move(payload);
  }
  if (close_after) closed_ = true;
  return response;
}

}  // namespace gdlog
