#include "server/service.h"

#include <unistd.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "gdatalog/export.h"
#include "gdatalog/sampler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/version.h"
#include "server/options.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace gdlog {

namespace {

void WriteInfo(JsonWriter& json, const ProgramRegistry::Info& info) {
  json.BeginObject();
  json.KV("id", info.id);
  json.KV("revision", static_cast<long long>(info.revision));
  json.KV("stratified", info.stratified);
  json.KV("grounder", info.grounder);
  json.KV("created", info.created);
  json.EndObject();
}

void WriteEstimate(JsonWriter& json,
                   const MonteCarloEstimator::Estimate& estimate) {
  json.BeginObject();
  json.KV("mean", estimate.mean);
  json.KV("std_error", estimate.std_error);
  json.EndObject();
}

/// Quantile estimate from a latency-histogram snapshot: the upper bound
/// (in ms) of the bucket where the cumulative count crosses q — the same
/// upper-bound convention Prometheus' histogram_quantile uses. 0 when the
/// histogram is empty; the overflow bucket reports the largest finite
/// bound.
double HistogramQuantileMs(const LatencyHistogram::Snapshot& snapshot,
                           double q) {
  if (snapshot.count == 0) return 0.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(snapshot.count));
  if (rank < 1) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    cumulative += snapshot.buckets[i];
    if (cumulative >= rank) {
      size_t bound = i < LatencyHistogram::kFiniteBuckets
                         ? i
                         : LatencyHistogram::kFiniteBuckets - 1;
      return static_cast<double>(LatencyHistogram::UpperBoundNanos(bound)) /
             1e6;
    }
  }
  return static_cast<double>(LatencyHistogram::UpperBoundNanos(
             LatencyHistogram::kFiniteBuckets - 1)) /
         1e6;
}

/// The predicate name of a query atom in surface syntax ("infected(2, 1)"
/// → "infected"); empty when the text has no leading name.
std::string QueryPredicateName(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  size_t end = begin;
  while (end < text.size() && text[end] != '(' && text[end] != ' ' &&
         text[end] != '\t') {
    ++end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace

namespace {

FleetService::Options FleetOptionsFrom(const InferenceService::Options& o) {
  FleetService::Options fleet;
  fleet.default_workers = o.fleet_workers;
  fleet.deadline_ms = o.fleet_deadline_ms;
  fleet.steal_after_ms = o.fleet_steal_after_ms;
  fleet.partial_cache_bytes = o.fleet_partial_cache_bytes;
  fleet.default_chase = o.default_chase;
  return fleet;
}

}  // namespace

InferenceService::InferenceService(Options options)
    : options_(std::move(options)),
      cache_(options_.cache_bytes),
      fleet_(&registry_, &cache_, FleetOptionsFrom(options_)) {}

HttpResponse InferenceService::Handle(const HttpRequest& request) {
  const uint64_t start_ns = MonotonicNanos();
  requests_.fetch_add(1, std::memory_order_relaxed);
  // The API surface lives under /v1/; the original unversioned paths stay
  // routable as deprecated aliases, marked with a Deprecation header (RFC
  // 9745) so clients can migrate on their own schedule.
  std::string target = request.target;
  bool versioned = false;
  if (target.rfind("/v1/", 0) == 0) {
    versioned = true;
    target = target.substr(3);
  }
  // Trace propagation: adopt the caller's well-formed id (so a multi-hop
  // request keeps one id end to end), mint one otherwise. Every response —
  // error envelopes included — echoes it.
  std::string trace;
  if (const std::string* header = request.FindHeader(kTraceHeader);
      header != nullptr && IsValidTraceId(*header)) {
    trace = *header;
  } else {
    trace = GenerateTraceId();
  }
  HttpResponse response = Route(request, target, trace);
  if (!versioned) {
    response.headers.emplace_back("Deprecation", "true");
    response.headers.emplace_back("Link",
                                  "</v1" + target +
                                      ">; rel=\"successor-version\"");
  }
  response.headers.emplace_back(kTraceHeader, trace);
  request_hist_[EndpointFor(target)].RecordNanos(MonotonicNanos() -
                                                 start_ns);
  return response;
}

InferenceService::Endpoint InferenceService::EndpointFor(
    const std::string& target) {
  if (target == "/healthz") return kHealthz;
  if (target == "/stats") return kStats;
  if (target == "/metrics") return kMetrics;
  if (target == "/programs") return kPrograms;
  if (target.rfind("/programs/", 0) == 0) return kProgram;
  if (target == "/query") return kQuery;
  if (target == "/sample") return kSample;
  if (target == "/shards") return kShards;
  if (target == "/jobs") return kJobs;
  return kOther;
}

const char* InferenceService::EndpointName(Endpoint endpoint) {
  switch (endpoint) {
    case kHealthz: return "healthz";
    case kStats: return "stats";
    case kMetrics: return "metrics";
    case kPrograms: return "programs";
    case kProgram: return "program";
    case kQuery: return "query";
    case kSample: return "sample";
    case kShards: return "shards";
    case kJobs: return "jobs";
    case kOther: return "other";
    case kEndpointCount: break;
  }
  return "other";
}

HttpResponse InferenceService::Route(const HttpRequest& request,
                                     const std::string& target,
                                     const std::string& trace) {
  if (target == "/healthz") {
    if (request.method != "GET") return MethodNotAllowed("GET");
    return HandleHealthz();
  }
  if (target == "/stats") {
    if (request.method != "GET") return MethodNotAllowed("GET");
    return HandleStats();
  }
  if (target == "/metrics") {
    if (request.method != "GET") return MethodNotAllowed("GET");
    return HandleMetrics();
  }
  if (target == "/programs") {
    if (request.method != "POST") return MethodNotAllowed("POST");
    return HandleRegister(request);
  }
  if (target.rfind("/programs/", 0) == 0) {
    std::string rest = target.substr(sizeof("/programs/") - 1);
    bool db_subresource = false;
    size_t slash = rest.find('/');
    if (slash != std::string::npos) {
      if (rest.substr(slash) != "/db") {
        return ErrorResponse(
            Status::NotFound("no such resource: " + target));
      }
      db_subresource = true;
      rest = rest.substr(0, slash);
    }
    if (rest.empty()) {
      return ErrorResponse(Status::NotFound("no such resource: " + target));
    }
    return HandleProgram(request, rest, db_subresource);
  }
  if (target == "/query") {
    if (request.method != "POST") return MethodNotAllowed("POST");
    return HandleQuery(request);
  }
  if (target == "/sample") {
    if (request.method != "POST") return MethodNotAllowed("POST");
    return HandleSample(request);
  }
  if (target == "/shards") {
    if (request.method != "POST") return MethodNotAllowed("POST");
    return fleet_.HandleShards(request);
  }
  if (target == "/jobs") {
    if (request.method != "POST") return MethodNotAllowed("POST");
    return fleet_.HandleJobs(request, trace);
  }
  return ErrorResponse(Status::NotFound("no such resource: " + target));
}

HttpResponse InferenceService::HandleRegister(const HttpRequest& request) {
  auto body = ParseBody(request);
  if (!body.ok()) return ErrorResponse(body.status());
  auto spec = ParseProgramSpec(*body);
  if (!spec.ok()) return ErrorResponse(spec.status());

  auto info = registry_.Register(std::move(*spec));
  if (!info.ok()) return ErrorResponse(info.status());
  JsonWriter json;
  WriteInfo(json, *info);
  return JsonResponse(info->created ? 201 : 200, json.str() + "\n");
}

HttpResponse InferenceService::HandleProgram(const HttpRequest& request,
                                             const std::string& id,
                                             bool db_subresource) {
  if (db_subresource) {
    if (request.method == "PUT") {
      auto body = ParseBody(request);
      if (!body.ok()) return ErrorResponse(body.status());
      auto db = RequiredString(*body, "db");
      if (!db.ok()) return ErrorResponse(db.status());
      auto info = registry_.ReplaceDatabase(id, std::move(*db));
      if (!info.ok()) return ErrorResponse(info.status());
      // Every cache line of the old revision is now unreachable via
      // fingerprints; drop them eagerly rather than waiting for LRU aging.
      // Same for this node's worker-side partial lines (remote workers'
      // caches need no invalidation — their keys pin revision + lineage,
      // so stale entries are unreachable there too and just age out).
      cache_.ErasePrefix(id + "|");
      fleet_.InvalidatePartials(id + "|");
      JsonWriter json;
      WriteInfo(json, *info);
      return JsonResponse(200, json.str() + "\n");
    }
    if (request.method == "PATCH") {
      auto body = ParseBody(request);
      if (!body.ok()) return ErrorResponse(body.status());
      auto delta = RequiredString(*body, "delta");
      if (!delta.ok()) return ErrorResponse(delta.status());
      auto applied = registry_.ApplyDatabaseDelta(id, *delta);
      if (!applied.ok()) return ErrorResponse(applied.status());
      delta_patches_.fetch_add(1, std::memory_order_relaxed);
      // Partial lines always pin revision + lineage, so post-delta lookups
      // can never hit the old entries; dropping them is eager hygiene.
      fleet_.InvalidatePartials(id + "|");
      size_t revalidated = 0;
      size_t evicted = 0;
      if (applied->touches_rule_bodies) {
        // The delta can change grounding fixpoints: every cached space for
        // this program is stale. Drop them all.
        evicted = cache_.ErasePrefix(id + "|");
      } else {
        // The delta's predicates occur in no rule body of Π, so every
        // outcome space of the old lineage equals the new one minus the
        // appended facts (splitting-set argument in ROADMAP): carry the
        // entries over — patched with the new facts — instead of
        // re-chasing them on the next query.
        std::vector<GroundAtom> added = applied->added_facts;
        auto patch = [added](const OutcomeSpace& space) {
          return std::make_shared<const OutcomeSpace>(
              space.WithAddedFacts(added));
        };
        revalidated = cache_.Revalidate(
            id + "|",
            InferenceCache::KeyPrefix(id, applied->base_revision,
                                      applied->old_lineage_digest),
            InferenceCache::KeyPrefix(id, applied->info.revision,
                                      applied->new_lineage_digest),
            patch, &evicted);
      }
      spaces_revalidated_.fetch_add(revalidated, std::memory_order_relaxed);
      spaces_evicted_.fetch_add(evicted, std::memory_order_relaxed);

      const DeltaStats& stats = applied->stats;
      JsonWriter json;
      json.BeginObject();
      json.KV("id", applied->info.id);
      json.KV("revision", static_cast<long long>(applied->info.revision));
      json.KV("stratified", applied->info.stratified);
      json.KV("grounder", applied->info.grounder);
      json.KV("created", applied->info.created);
      json.Key("delta").BeginObject();
      json.KV("base_revision",
              static_cast<long long>(applied->base_revision));
      json.KV("lineage", applied->new_lineage_digest);
      json.KV("rows_appended", static_cast<long long>(stats.rows_appended));
      json.KV("duplicates_skipped",
              static_cast<long long>(stats.duplicates_skipped));
      json.KV("predicates_touched",
              static_cast<long long>(stats.predicates_touched));
      json.KV("rules_refired", static_cast<long long>(stats.rules_refired));
      json.KV("summary_changed", stats.summary_changed);
      json.KV("pipeline_reused", stats.pipeline_reused);
      json.KV("root_resumed", stats.root_resumed);
      json.KV("touches_rule_bodies", applied->touches_rule_bodies);
      json.KV("spaces_revalidated", static_cast<long long>(revalidated));
      json.KV("spaces_evicted", static_cast<long long>(evicted));
      json.EndObject();
      json.EndObject();
      return JsonResponse(200, json.str() + "\n");
    }
    return MethodNotAllowed("PUT, PATCH");
  }
  if (request.method == "GET") {
    auto entry = registry_.Find(id);
    if (entry == nullptr) {
      return ErrorResponse(Status::NotFound("unknown program id: " + id));
    }
    JsonWriter json;
    WriteInfo(json, ProgramRegistry::InfoFor(*entry, /*created=*/false));
    return JsonResponse(200, json.str() + "\n");
  }
  if (request.method == "DELETE") {
    Status status = registry_.Remove(id);
    if (!status.ok()) return ErrorResponse(status);
    cache_.ErasePrefix(id + "|");
    fleet_.InvalidatePartials(id + "|");
    return JsonResponse(200, "{\"deleted\":true}\n");
  }
  return MethodNotAllowed("GET, DELETE");
}

HttpResponse InferenceService::HandleQuery(const HttpRequest& request) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  auto body = ParseBody(request);
  if (!body.ok()) return ErrorResponse(body.status());
  auto id = RequiredString(*body, "program_id");
  if (!id.ok()) return ErrorResponse(id.status());
  auto entry = registry_.Find(*id);
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound("unknown program id: " + *id));
  }
  auto chase = ReadChaseOptions(*body, options_.default_chase);
  if (!chase.ok()) return ErrorResponse(chase.status());

  // Marginal queries name their goals, which lets the magic-sets demand
  // pass drop every Δ-choice outside the goals' (and the constraints')
  // dependency cone before the chase runs. Only sound for stratified
  // programs, and only for this path: the full-document path must stay
  // byte-identical to `gdlog_cli --json`, so it always uses the base
  // engine. Queried predicates all become goals, so their marginals (and
  // prob_consistent — constraint cones are always kept) are exact.
  const JsonValue* queries = body->Find("queries");
  const GDatalog* engine = &entry->engine;
  std::shared_ptr<const GDatalog> demand_holder;
  std::string demand_suffix;
  if (queries != nullptr && queries->is_array() &&
      entry->engine.stratified() && entry->engine.opt_stats().enabled) {
    std::vector<std::string> goals;
    for (const JsonValue& query : queries->array()) {
      if (!query.is_string()) break;
      std::string name = QueryPredicateName(query.string_value());
      if (!name.empty()) goals.push_back(std::move(name));
    }
    if (goals.size() == queries->array().size()) {
      auto demand = registry_.DemandEngine(*entry, goals);
      // Failure to build a demand engine is never a query failure: fall
      // back to the base engine (same answers, just less pruning).
      if (demand.ok()) {
        demand_holder = std::move(*demand);
        engine = demand_holder.get();
        demand_suffix =
            "|demand:" + ProgramRegistry::DemandSignature(std::move(goals));
        demand_queries_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  std::string key =
      InferenceCache::Fingerprint(entry->id, entry->revision,
                                  entry->lineage_digest, *chase) +
      demand_suffix;
  // The chase histogram sees only cache-miss computes; the lookup
  // histogram sees LookupOrCompute's own overhead (total minus compute),
  // so a hot cache shows up as microsecond lookups, not zero-cost chases.
  uint64_t compute_ns = 0;
  const uint64_t lookup_start_ns = MonotonicNanos();
  auto space = cache_.LookupOrCompute(key, [&]() -> Result<OutcomeSpace> {
    const uint64_t chase_start_ns = MonotonicNanos();
    if (chase->profile) {
      ChaseProfile profile;
      Result<OutcomeSpace> result = engine->Infer(*chase, &profile);
      if (result.ok()) {
        RecordRuleProfiles(entry->id, engine->SigmaRuleLabels(), profile);
      }
      compute_ns = MonotonicNanos() - chase_start_ns;
      return result;
    }
    Result<OutcomeSpace> result = engine->Infer(*chase);
    compute_ns = MonotonicNanos() - chase_start_ns;
    return result;
  });
  const uint64_t lookup_ns = MonotonicNanos() - lookup_start_ns;
  cache_lookup_hist_.RecordNanos(
      lookup_ns >= compute_ns ? lookup_ns - compute_ns : 0);
  if (compute_ns != 0) chase_hist_.RecordNanos(compute_ns);
  if (!space.ok()) return ErrorResponse(space.status());
  if (queries == nullptr) {
    auto include_outcomes = OptionalBool(*body, "include_outcomes", false);
    auto include_models = OptionalBool(*body, "include_models", false);
    auto include_events = OptionalBool(*body, "include_events", false);
    if (!include_outcomes.ok()) return ErrorResponse(include_outcomes.status());
    if (!include_models.ok()) return ErrorResponse(include_models.status());
    if (!include_events.ok()) return ErrorResponse(include_events.status());
    JsonExportOptions json_options;
    json_options.include_outcomes = *include_outcomes;
    json_options.include_models = *include_models;
    json_options.include_events = *include_events;
    // This body — including the trailing newline — is byte-identical to
    // `gdlog_cli --json` stdout for the same program/DB/options, which is
    // what makes the server a drop-in for scripted batch runs.
    return JsonResponse(
        200, OutcomeSpaceToJson(**space, entry->engine.translated(),
                                entry->engine.program().interner(),
                                json_options) +
                 "\n");
  }

  if (!queries->is_array()) {
    return ErrorResponse(
        Status::InvalidArgument("'queries' must be an array of atoms"));
  }
  auto condition = OptionalBool(*body, "condition", false);
  if (!condition.ok()) return ErrorResponse(condition.status());

  JsonWriter json;
  json.BeginObject();
  json.KV("program_id", entry->id);
  json.KV("revision", static_cast<long long>(entry->revision));
  json.KV("complete", (*space)->complete);
  json.Key("prob_consistent");
  WriteProbJson(json, (*space)->ProbConsistent());
  json.KV("condition", *condition);
  json.Key("marginals").BeginArray();
  for (const JsonValue& query : queries->array()) {
    if (!query.is_string()) {
      return ErrorResponse(
          Status::InvalidArgument("'queries' must be an array of atoms"));
    }
    const std::string& text = query.string_value();
    auto atom = engine->LookupGroundAtom(text);
    bool unknown_name = !atom.ok() &&
                        atom.status().code() == StatusCode::kNotFound;
    if (!atom.ok() && !unknown_name) {
      return ErrorResponse(Status::InvalidArgument(
          "bad query '" + text + "': " + atom.status().message()));
    }
    json.BeginObject();
    json.KV("atom", text);
    if (*condition) {
      // An unknown name occurs in no outcome: conditioned bounds are
      // exactly [0, 0] (or undefined when P(consistent) = 0), the same
      // answer MarginalGivenConsistent gives a known-but-absent atom.
      std::optional<OutcomeSpace::Bounds> bounds;
      if (unknown_name) {
        if (!((*space)->ProbConsistent() == Prob::Zero())) {
          bounds = OutcomeSpace::Bounds{};
        }
      } else {
        bounds = (*space)->MarginalGivenConsistent(*atom);
      }
      if (!bounds) {
        json.KV("undefined", true);
      } else {
        json.Key("lower");
        WriteProbJson(json, bounds->lower);
        json.Key("upper");
        WriteProbJson(json, bounds->upper);
      }
    } else {
      OutcomeSpace::Bounds bounds;
      if (!unknown_name) bounds = (*space)->Marginal(*atom);
      json.Key("lower");
      WriteProbJson(json, bounds.lower);
      json.Key("upper");
      WriteProbJson(json, bounds.upper);
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return JsonResponse(200, json.str() + "\n");
}

HttpResponse InferenceService::HandleSample(const HttpRequest& request) {
  samples_.fetch_add(1, std::memory_order_relaxed);
  auto body = ParseBody(request);
  if (!body.ok()) return ErrorResponse(body.status());
  auto id = RequiredString(*body, "program_id");
  if (!id.ok()) return ErrorResponse(id.status());
  auto entry = registry_.Find(*id);
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound("unknown program id: " + *id));
  }
  auto samples = OptionalU64(*body, "samples", 0);
  if (!samples.ok()) return ErrorResponse(samples.status());
  if (*samples == 0) {
    return ErrorResponse(
        Status::InvalidArgument("'samples' must be a positive integer"));
  }
  if (*samples > options_.max_samples) {
    return ErrorResponse(Status::InvalidArgument(
        "'samples' exceeds the server limit of " +
        std::to_string(options_.max_samples)));
  }
  auto seed = OptionalU64(*body, "seed", 2023);
  if (!seed.ok()) return ErrorResponse(seed.status());
  auto chase = ReadChaseOptions(*body, options_.default_chase);
  if (!chase.ok()) return ErrorResponse(chase.status());

  MonteCarloEstimator estimator(&entry->engine.chase(), *chase);
  auto consistent = estimator.EstimateProbConsistent(*samples, *seed);
  if (!consistent.ok()) return ErrorResponse(consistent.status());

  JsonWriter json;
  json.BeginObject();
  json.KV("program_id", entry->id);
  json.KV("samples", static_cast<long long>(consistent->samples));
  json.KV("truncated", static_cast<long long>(consistent->truncated));
  json.Key("prob_consistent");
  WriteEstimate(json, *consistent);
  const JsonValue* queries = body->Find("queries");
  if (queries != nullptr) {
    if (!queries->is_array()) {
      return ErrorResponse(
          Status::InvalidArgument("'queries' must be an array of atoms"));
    }
    json.Key("marginals").BeginArray();
    for (const JsonValue& query : queries->array()) {
      if (!query.is_string()) {
        return ErrorResponse(
            Status::InvalidArgument("'queries' must be an array of atoms"));
      }
      const std::string& text = query.string_value();
      auto atom = entry->engine.LookupGroundAtom(text);
      json.BeginObject();
      json.KV("atom", text);
      if (!atom.ok() && atom.status().code() == StatusCode::kNotFound) {
        // Never-mentioned names occur in no sample; report exact zeros
        // rather than burning 2n chase walks on them.
        MonteCarloEstimator::Estimate zero;
        zero.samples = *samples;
        json.Key("lower");
        WriteEstimate(json, zero);
        json.Key("upper");
        WriteEstimate(json, zero);
        json.EndObject();
        continue;
      }
      if (!atom.ok()) {
        return ErrorResponse(Status::InvalidArgument(
            "bad query '" + text + "': " + atom.status().message()));
      }
      auto lower = estimator.EstimateMarginalLower(*samples, *seed, *atom);
      if (!lower.ok()) return ErrorResponse(lower.status());
      auto upper = estimator.EstimateMarginalUpper(*samples, *seed, *atom);
      if (!upper.ok()) return ErrorResponse(upper.status());
      json.Key("lower");
      WriteEstimate(json, *lower);
      json.Key("upper");
      WriteEstimate(json, *upper);
      json.EndObject();
    }
    json.EndArray();
  }
  json.EndObject();
  return JsonResponse(200, json.str() + "\n");
}

HttpResponse InferenceService::HandleHealthz() {
  double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  JsonWriter json;
  json.BeginObject();
  json.KV("status", "ok");
  json.KV("version", GdlogVersion());
  json.KV("uptime_s", uptime);
  json.KV("pid", static_cast<long long>(::getpid()));
  json.KV("fleet_workers_configured",
          static_cast<long long>(options_.fleet_workers.size()));
  json.EndObject();
  return JsonResponse(200, json.str() + "\n");
}

InferenceService::ServiceCounters InferenceService::SnapshotCounters() const {
  ServiceCounters counters;
  counters.requests = requests_.load(std::memory_order_relaxed);
  counters.queries = queries_.load(std::memory_order_relaxed);
  counters.samples = samples_.load(std::memory_order_relaxed);
  counters.demand_queries =
      demand_queries_.load(std::memory_order_relaxed);
  counters.delta_patches = delta_patches_.load(std::memory_order_relaxed);
  counters.spaces_revalidated =
      spaces_revalidated_.load(std::memory_order_relaxed);
  counters.spaces_evicted =
      spaces_evicted_.load(std::memory_order_relaxed);
  return counters;
}

void InferenceService::RecordRuleProfiles(
    const std::string& program_id,
    const std::vector<std::string>& rule_labels,
    const ChaseProfile& profile) {
  std::lock_guard<std::mutex> lock(profile_mu_);
  std::map<std::string, RuleProfile>& rules = rule_profiles_[program_id];
  for (size_t i = 0; i < profile.rules.size(); ++i) {
    const RuleProfile& rp = profile.rules[i];
    if (rp.calls == 0 && rp.derivations == 0) continue;
    std::string label =
        i < rule_labels.size() ? rule_labels[i] : "r" + std::to_string(i);
    rules[label].Add(rp);
  }
}

HttpResponse InferenceService::HandleStats() {
  // All subsystem snapshots are taken up front, before any serialization:
  // each is internally coherent (one load per counter, under the
  // subsystem's own discipline), so no sum in the document mixes two
  // points in time.
  ServiceCounters server = SnapshotCounters();
  InferenceCache::Stats cache_stats = cache_.stats();
  ProgramRegistry::OptCounters opt = registry_.opt_counters();
  ProgramRegistry::DeltaCounters delta = registry_.delta_counters();
  FleetService::Counters fleet = fleet_.counters();
  size_t programs = registry_.size();
  double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  // Counters nest under one stable key per subsystem (server, registry,
  // cache, opt, delta, fleet) — the schema clients (gdlog_load --check,
  // the CI greps) key on.
  JsonWriter json;
  json.BeginObject();
  json.Key("server").BeginObject();
  json.KV("uptime_seconds", uptime);
  json.Key("requests").BeginObject();
  json.KV("total", static_cast<long long>(server.requests));
  json.KV("queries", static_cast<long long>(server.queries));
  json.KV("samples", static_cast<long long>(server.samples));
  json.EndObject();
  json.EndObject();
  json.Key("registry").BeginObject();
  json.KV("programs", static_cast<long long>(programs));
  json.EndObject();
  json.Key("cache").BeginObject();
  json.KV("hits", static_cast<long long>(cache_stats.hits));
  json.KV("misses", static_cast<long long>(cache_stats.misses));
  json.KV("coalesced", static_cast<long long>(cache_stats.coalesced));
  json.KV("evictions", static_cast<long long>(cache_stats.evictions));
  json.KV("inserts", static_cast<long long>(cache_stats.inserts));
  json.KV("revalidated", static_cast<long long>(cache_stats.revalidated));
  json.KV("entries", static_cast<long long>(cache_stats.entries));
  json.KV("bytes", static_cast<long long>(cache_stats.bytes));
  json.KV("capacity_bytes",
          static_cast<long long>(cache_stats.capacity_bytes));
  json.EndObject();
  json.Key("opt").BeginObject();
  json.KV("db_replacements", static_cast<long long>(opt.db_replacements));
  json.KV("pipeline_reuses", static_cast<long long>(opt.pipeline_reuses));
  json.KV("demand_engines_built",
          static_cast<long long>(opt.demand_engines_built));
  json.KV("demand_cache_hits",
          static_cast<long long>(opt.demand_cache_hits));
  json.KV("demand_queries",
          static_cast<long long>(server.demand_queries));
  json.EndObject();
  json.Key("delta").BeginObject();
  json.KV("patches", static_cast<long long>(delta.deltas_applied));
  json.KV("rows_appended", static_cast<long long>(delta.rows_appended));
  json.KV("rules_refired", static_cast<long long>(delta.rules_refired));
  json.KV("pipeline_reuses", static_cast<long long>(delta.pipeline_reuses));
  json.KV("spaces_revalidated",
          static_cast<long long>(server.spaces_revalidated));
  json.KV("spaces_evicted",
          static_cast<long long>(server.spaces_evicted));
  json.EndObject();
  json.Key("fleet").BeginObject();
  json.KV("shard_requests", static_cast<long long>(fleet.shard_requests));
  json.KV("shards_explored", static_cast<long long>(fleet.shards_explored));
  json.KV("jobs", static_cast<long long>(fleet.jobs));
  json.KV("jobs_failed", static_cast<long long>(fleet.jobs_failed));
  json.KV("dispatches", static_cast<long long>(fleet.dispatches));
  json.KV("retries", static_cast<long long>(fleet.retries));
  json.KV("steals", static_cast<long long>(fleet.steals));
  json.KV("worker_failures", static_cast<long long>(fleet.worker_failures));
  json.KV("partials_merged", static_cast<long long>(fleet.partials_merged));
  json.KV("partials_streamed",
          static_cast<long long>(fleet.partials_streamed));
  json.KV("duplicate_partials",
          static_cast<long long>(fleet.duplicate_partials));
  json.KV("partial_cache_hits",
          static_cast<long long>(fleet.partial_cache_hits));
  json.KV("partial_cache_misses",
          static_cast<long long>(fleet.partial_cache_misses));
  json.KV("jobs_in_flight", static_cast<long long>(fleet.jobs_in_flight));
  json.KV("peak_resident_partials",
          static_cast<long long>(fleet.peak_resident_partials));
  // Per-worker exchange latency, keyed by address. Quantiles are bucket
  // upper bounds (log-scale histogram) — coarse but monotone, enough to
  // single out a straggler worker at a glance.
  json.Key("workers").BeginObject();
  for (const auto& [worker, stats] : fleet_.WorkerDispatches()) {
    json.Key(worker).BeginObject();
    json.KV("dispatches", static_cast<long long>(stats.dispatches));
    json.KV("p50_ms", HistogramQuantileMs(stats.hist, 0.50));
    json.KV("p95_ms", HistogramQuantileMs(stats.hist, 0.95));
    json.KV("max_ms", static_cast<double>(stats.max_ns) / 1e6);
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  json.EndObject();
  return JsonResponse(200, json.str() + "\n");
}

HttpResponse InferenceService::HandleMetrics() {
  // Same snapshot-first discipline as /v1/stats: every family renders from
  // one point-in-time view per subsystem.
  ServiceCounters server = SnapshotCounters();
  InferenceCache::Stats cache_stats = cache_.stats();
  ProgramRegistry::OptCounters opt = registry_.opt_counters();
  ProgramRegistry::DeltaCounters delta = registry_.delta_counters();
  FleetService::Counters fleet = fleet_.counters();
  size_t programs = registry_.size();
  double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();

  MetricsWriter metrics;
  metrics.Gauge("gdlog_build_info",
                "Build metadata; the value is always 1.",
                "version=\"" + EscapeLabelValue(GdlogVersion()) + "\"", 1.0);
  metrics.Gauge("gdlog_uptime_seconds",
                "Seconds since the service started.", "", uptime);
  metrics.Gauge("gdlog_registry_programs",
                "Programs currently registered.",
                "", static_cast<double>(programs));

  metrics.Counter("gdlog_http_requests_total",
                  "HTTP requests routed (all endpoints).", "",
                  server.requests);
  metrics.Counter("gdlog_queries_total", "POST /v1/query requests.", "",
                  server.queries);
  metrics.Counter("gdlog_samples_total", "POST /v1/sample requests.", "",
                  server.samples);
  metrics.Counter("gdlog_demand_queries_total",
                  "Marginal queries served through a demand-transformed "
                  "engine.",
                  "", server.demand_queries);

  metrics.Counter("gdlog_cache_hits_total",
                  "Inference cache lookups served from memory.", "",
                  cache_stats.hits);
  metrics.Counter("gdlog_cache_misses_total",
                  "Inference cache lookups that computed.", "",
                  cache_stats.misses);
  metrics.Counter("gdlog_cache_coalesced_total",
                  "Lookups that waited on another thread's compute.", "",
                  cache_stats.coalesced);
  metrics.Counter("gdlog_cache_evictions_total",
                  "Cache entries evicted (LRU or invalidation).", "",
                  cache_stats.evictions);
  metrics.Counter("gdlog_cache_inserts_total",
                  "Cache entries inserted.", "", cache_stats.inserts);
  metrics.Counter("gdlog_cache_revalidated_total",
                  "Cache entries carried across a database delta.", "",
                  cache_stats.revalidated);
  metrics.Gauge("gdlog_cache_entries", "Cache entries resident.", "",
                static_cast<double>(cache_stats.entries));
  metrics.Gauge("gdlog_cache_bytes", "Approximate cache bytes resident.",
                "", static_cast<double>(cache_stats.bytes));
  metrics.Gauge("gdlog_cache_capacity_bytes", "Cache byte capacity.", "",
                static_cast<double>(cache_stats.capacity_bytes));

  metrics.Counter("gdlog_opt_db_replacements_total",
                  "PUT /db database replacements.", "",
                  opt.db_replacements);
  metrics.Counter("gdlog_opt_pipeline_reuses_total",
                  "Optimization pipelines reused across revisions.", "",
                  opt.pipeline_reuses);
  metrics.Counter("gdlog_opt_demand_engines_built_total",
                  "Demand-transformed engines built.", "",
                  opt.demand_engines_built);
  metrics.Counter("gdlog_opt_demand_cache_hits_total",
                  "Demand-engine cache hits.", "", opt.demand_cache_hits);

  metrics.Counter("gdlog_delta_patches_total",
                  "PATCH /db deltas applied.", "", delta.deltas_applied);
  metrics.Counter("gdlog_delta_rows_appended_total",
                  "Facts appended by deltas.", "", delta.rows_appended);
  metrics.Counter("gdlog_delta_rules_refired_total",
                  "Rules re-fired by incremental re-grounding.", "",
                  delta.rules_refired);
  metrics.Counter("gdlog_delta_pipeline_reuses_total",
                  "Grounding pipelines reused across deltas.", "",
                  delta.pipeline_reuses);
  metrics.Counter("gdlog_delta_spaces_revalidated_total",
                  "Cached outcome spaces revalidated across a delta.", "",
                  server.spaces_revalidated);
  metrics.Counter("gdlog_delta_spaces_evicted_total",
                  "Cached outcome spaces evicted by a delta.", "",
                  server.spaces_evicted);

  metrics.Counter("gdlog_fleet_shard_requests_total",
                  "POST /v1/shards requests served.", "",
                  fleet.shard_requests);
  metrics.Counter("gdlog_fleet_shards_explored_total",
                  "Shard indices explored locally.", "",
                  fleet.shards_explored);
  metrics.Counter("gdlog_fleet_jobs_total", "POST /v1/jobs requests.", "",
                  fleet.jobs);
  metrics.Counter("gdlog_fleet_jobs_failed_total",
                  "Jobs that returned non-2xx.", "", fleet.jobs_failed);
  metrics.Counter("gdlog_fleet_dispatches_total",
                  "Worker exchanges attempted.", "", fleet.dispatches);
  metrics.Counter("gdlog_fleet_retries_total",
                  "Shard groups re-dispatched.", "", fleet.retries);
  metrics.Counter("gdlog_fleet_worker_failures_total",
                  "Worker exchanges that failed.", "",
                  fleet.worker_failures);
  metrics.Counter("gdlog_fleet_partials_merged_total",
                  "Partials merged into job results.", "",
                  fleet.partials_merged);
  metrics.Counter("gdlog_fleet_steals_total",
                  "Straggler exchanges stolen by idle workers.", "",
                  fleet.steals);
  metrics.Counter("gdlog_fleet_partials_streamed_total",
                  "Partial lines received mid-exchange (pre-dedup).", "",
                  fleet.partials_streamed);
  metrics.Counter("gdlog_fleet_duplicate_partials_total",
                  "Late duplicate partial lines discarded.", "",
                  fleet.duplicate_partials);
  metrics.Counter("gdlog_fleet_partial_cache_hits_total",
                  "Worker partial-cache lines served without a chase.", "",
                  fleet.partial_cache_hits);
  metrics.Counter("gdlog_fleet_partial_cache_misses_total",
                  "Worker partial-cache misses that ran the chase.", "",
                  fleet.partial_cache_misses);
  metrics.Gauge("gdlog_fleet_jobs_in_flight",
                "Coordinator jobs currently dispatching.", "",
                static_cast<double>(fleet.jobs_in_flight));
  metrics.Gauge("gdlog_fleet_peak_resident_partials",
                "High-water mark of partials resident on the coordinator.",
                "", static_cast<double>(fleet.peak_resident_partials));

  for (size_t i = 0; i < kEndpointCount; ++i) {
    metrics.Histogram(
        "gdlog_request_duration_seconds",
        "Request latency by endpoint.",
        std::string("endpoint=\"") +
            EndpointName(static_cast<Endpoint>(i)) + "\"",
        request_hist_[i].TakeSnapshot());
  }
  metrics.Histogram("gdlog_chase_duration_seconds",
                    "Chase wall time of cache-miss query computes.", "",
                    chase_hist_.TakeSnapshot());
  metrics.Histogram("gdlog_cache_lookup_duration_seconds",
                    "Inference-cache lookup overhead (compute excluded).",
                    "", cache_lookup_hist_.TakeSnapshot());
  metrics.Histogram("gdlog_fleet_dispatch_duration_seconds",
                    "Per-group worker exchange latency (each attempt).",
                    "", fleet_.dispatch_histogram().TakeSnapshot());
  for (const auto& [worker, stats] : fleet_.WorkerDispatches()) {
    metrics.Histogram("gdlog_fleet_worker_dispatch_duration_seconds",
                      "Worker exchange latency by worker address.",
                      "worker=\"" + EscapeLabelValue(worker) + "\"",
                      stats.hist);
  }

  {
    // Per-rule chase-profile totals, fed by profiled queries
    // ("profile": true). std::map iteration keeps label order — and hence
    // the exposition — deterministic for a given counter state.
    std::lock_guard<std::mutex> lock(profile_mu_);
    for (const auto& [program_id, rules] : rule_profiles_) {
      std::string program_label =
          "program=\"" + EscapeLabelValue(program_id) + "\",rule=\"";
      for (const auto& [rule_label, rp] : rules) {
        std::string labels =
            program_label + EscapeLabelValue(rule_label) + "\"";
        metrics.Counter("gdlog_rule_calls_total",
                        "Profiled (rule, pivot) executor invocations.",
                        labels, rp.calls);
        metrics.Counter("gdlog_rule_bindings_total",
                        "Profiled join rows enumerated.", labels,
                        rp.bindings);
        metrics.Counter("gdlog_rule_derivations_total",
                        "Profiled ground instances derived (pre-dedup).",
                        labels, rp.derivations);
        metrics.CounterSeconds("gdlog_rule_time_seconds_total",
                               "Profiled wall time in the join executor.",
                               labels, rp.time_ns);
      }
    }
  }

  HttpResponse response = JsonResponse(200, metrics.Take());
  response.content_type = kMetricsContentType;
  return response;
}

}  // namespace gdlog
