#include "server/cache.h"

#include <cstdio>
#include <utility>
#include <vector>

namespace gdlog {

std::string InferenceCache::KeyPrefix(std::string_view program_id,
                                      uint64_t revision,
                                      std::string_view lineage_digest) {
  std::string key;
  key.reserve(program_id.size() + lineage_digest.size() + 32);
  key += program_id;
  key += "|rev=";
  key += std::to_string(revision);
  key += "|lin=";
  key += lineage_digest;
  key += "|";
  return key;
}

std::string InferenceCache::Fingerprint(std::string_view program_id,
                                        uint64_t revision,
                                        std::string_view lineage_digest,
                                        const ChaseOptions& options) {
  // min_path_prob is a double; %a renders its bits exactly, so two options
  // differing only in the last ulp get distinct keys.
  char mpp[40];
  std::snprintf(mpp, sizeof(mpp), "%a", options.min_path_prob);
  std::string key = KeyPrefix(program_id, revision, lineage_digest);
  key.reserve(key.size() + 96);
  key += "mo=";
  key += std::to_string(options.max_outcomes);
  key += "|md=";
  key += std::to_string(options.max_depth);
  key += "|sl=";
  key += std::to_string(options.support_limit);
  key += "|mpp=";
  key += mpp;
  key += "|ss=";
  key += std::to_string(options.trigger_shuffle_seed);
  key += "|smn=";
  key += std::to_string(options.solver_max_nodes);
  return key;
}

size_t InferenceCache::ApproxBytes(const OutcomeSpace& space) {
  // Heap-node overheads are rough constants; the point is a stable,
  // monotone estimate, not an allocator audit.
  constexpr size_t kNodeOverhead = 48;
  auto atom_bytes = [](const GroundAtom& atom) {
    return sizeof(GroundAtom) + atom.args.capacity() * sizeof(Value);
  };
  size_t bytes = sizeof(OutcomeSpace);
  for (const PossibleOutcome& outcome : space.outcomes) {
    bytes += sizeof(PossibleOutcome);
    for (const auto& [active, value] : outcome.choices.entries()) {
      bytes += kNodeOverhead + atom_bytes(active) + sizeof(value);
    }
    for (const StableModel& model : outcome.models) {
      bytes += kNodeOverhead + sizeof(StableModel);
      for (const GroundAtom& atom : model) bytes += atom_bytes(atom);
    }
  }
  return bytes;
}

Result<std::shared_ptr<const OutcomeSpace>> InferenceCache::LookupOrCompute(
    const std::string& key, const ComputeFn& compute) {
  std::shared_ptr<Inflight> flight;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.space;
    }
    auto in = inflight_.find(key);
    if (in != inflight_.end()) {
      // Someone else is already chasing this key: wait for their result
      // instead of burning a second chase on identical work.
      ++coalesced_;
      std::shared_ptr<Inflight> theirs = in->second;
      cv_.wait(lock, [&] { return theirs->done; });
      if (!theirs->status.ok()) return theirs->status;
      return theirs->space;
    }
    ++misses_;
    flight = std::make_shared<Inflight>();
    inflight_.emplace(key, flight);
  }

  // The chase runs without the lock: concurrent lookups of *other* keys
  // proceed, and same-key lookups block on the inflight entry above.
  Result<OutcomeSpace> result = compute();

  std::lock_guard<std::mutex> lock(mu_);
  if (result.ok()) {
    flight->space =
        std::make_shared<const OutcomeSpace>(std::move(*result));
    InsertLocked(key, flight->space);
  } else {
    flight->status = result.status();
  }
  flight->done = true;
  inflight_.erase(key);
  cv_.notify_all();
  if (!flight->status.ok()) return flight->status;
  return flight->space;
}

void InferenceCache::InsertLocked(
    const std::string& key, std::shared_ptr<const OutcomeSpace> space) {
  size_t bytes = ApproxBytes(*space);
  if (bytes > capacity_bytes_) return;  // would evict everything for nothing
  lru_.push_front(key);
  EntryData data;
  data.space = std::move(space);
  data.bytes = bytes;
  data.lru_it = lru_.begin();
  entries_[key] = std::move(data);
  bytes_ += bytes;
  ++inserts_;
  while (bytes_ > capacity_bytes_ && lru_.size() > 1) {
    auto victim = entries_.find(lru_.back());
    ++evictions_;
    EraseLocked(victim);
  }
}

void InferenceCache::EraseLocked(
    std::unordered_map<std::string, EntryData>::iterator it) {
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

size_t InferenceCache::Revalidate(std::string_view program_prefix,
                                  std::string_view old_prefix,
                                  std::string_view new_prefix,
                                  const PatchFn& patch, size_t* evicted) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::shared_ptr<const OutcomeSpace>>>
      moved;
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    std::string_view key = it->first;
    if (key.substr(0, program_prefix.size()) != program_prefix) {
      ++it;
      continue;
    }
    if (key.substr(0, old_prefix.size()) == old_prefix) {
      moved.emplace_back(
          std::string(new_prefix) + std::string(key.substr(old_prefix.size())),
          it->second.space);
    } else {
      ++evictions_;
      ++dropped;
    }
    auto victim = it++;
    EraseLocked(victim);
  }
  size_t count = 0;
  for (auto& [key, space] : moved) {
    std::shared_ptr<const OutcomeSpace> patched =
        patch ? patch(*space) : space;
    if (patched == nullptr) {
      ++evictions_;
      ++dropped;
      continue;
    }
    if (entries_.count(key) != 0) continue;  // fresh compute landed first
    InsertLocked(key, std::move(patched));
    ++count;
    ++revalidated_;
  }
  if (evicted != nullptr) *evicted = dropped;
  return count;
}

size_t InferenceCache::ErasePrefix(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (std::string_view(it->first).substr(0, prefix.size()) == prefix) {
      auto victim = it++;
      EraseLocked(victim);
      ++evictions_;
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void InferenceCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

InferenceCache::Stats InferenceCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.coalesced = coalesced_;
  stats.evictions = evictions_;
  stats.inserts = inserts_;
  stats.revalidated = revalidated_;
  stats.entries = entries_.size();
  stats.bytes = bytes_;
  stats.capacity_bytes = capacity_bytes_;
  return stats;
}

}  // namespace gdlog
