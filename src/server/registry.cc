#include "server/registry.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "util/hash.h"

namespace gdlog {

namespace {

std::string HexDigest(uint64_t x) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(x));
  return std::string(buf);
}

/// Content digest of a delta text — what a LineageLink records.
std::string DeltaDigest(const std::string& delta_text) {
  return HexDigest(Mix64(std::hash<std::string>{}(delta_text)));
}

/// Rolling lineage digest: folds the previous chain digest, the base
/// revision and the new delta's digest, so equal digests imply equal
/// derivation histories (up to hash collision).
std::string ChainDigest(const std::string& previous, uint64_t base_revision,
                        const std::string& delta_digest) {
  std::hash<std::string> h;
  size_t x = Mix64(h(previous));
  x = HashCombine(x, static_cast<size_t>(base_revision));
  x = HashCombine(x, h(delta_digest));
  return HexDigest(x);
}

}  // namespace

Result<GDatalog> BuildEngine(const ProgramSpec& spec,
                             std::vector<std::string> demand_goals) {
  GDatalog::Options options;
  options.grounder = spec.grounder;
  options.demand_goals = std::move(demand_goals);
  if (spec.extensions) {
    auto registry = std::make_unique<DistributionRegistry>(
        DistributionRegistry::Builtins());
    ExtensionOptions extension_options;
    if (spec.normalgrid_max_cells >= 0) {
      extension_options.normalgrid_max_half_cells = spec.normalgrid_max_cells;
    }
    GDLOG_RETURN_IF_ERROR(
        RegisterExtensionDistributions(registry.get(), extension_options));
    options.registry = std::move(registry);
  }
  return GDatalog::Create(spec.program_text, spec.db_text,
                          std::move(options));
}

uint64_t ProgramRegistry::SpecHash(const ProgramSpec& spec) const {
  std::hash<std::string> h;
  size_t x = Mix64(h(spec.program_text));
  x = HashCombine(x, h(spec.db_text));
  x = HashCombine(x, static_cast<size_t>(spec.grounder));
  x = HashCombine(x, spec.extensions ? 1u : 0u);
  x = HashCombine(x, static_cast<size_t>(spec.normalgrid_max_cells));
  return x;
}

ProgramRegistry::Info ProgramRegistry::InfoFor(const Entry& entry,
                                               bool created) {
  Info info;
  info.id = entry.id;
  info.revision = entry.revision;
  info.stratified = entry.engine.stratified();
  info.grounder = std::string(entry.engine.grounder().name());
  info.created = created;
  return info;
}

Result<ProgramRegistry::Info> ProgramRegistry::Register(ProgramSpec spec) {
  uint64_t hash = SpecHash(spec);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_hash_.find(hash);
    if (it != by_hash_.end()) {
      auto existing = by_id_.find(it->second);
      if (existing != by_id_.end() && existing->second->spec == spec) {
        return InfoFor(*existing->second, /*created=*/false);
      }
    }
  }
  // Engine construction (parse/validate/translate/ground setup) is the
  // expensive part; run it unlocked so registrations don't block lookups.
  GDLOG_ASSIGN_OR_RETURN(GDatalog engine, BuildEngine(spec));
  std::lock_guard<std::mutex> lock(mu_);
  // Re-check: another thread may have registered the same spec meanwhile.
  auto it = by_hash_.find(hash);
  if (it != by_hash_.end()) {
    auto existing = by_id_.find(it->second);
    if (existing != by_id_.end() && existing->second->spec == spec) {
      return InfoFor(*existing->second, /*created=*/false);
    }
  }
  std::string id = "p" + std::to_string(next_id_++);
  auto entry = std::make_shared<const Entry>(id, /*revision=*/0,
                                             std::move(spec),
                                             std::move(engine));
  by_id_.emplace(id, entry);
  by_hash_[hash] = id;
  return InfoFor(*entry, /*created=*/true);
}

std::shared_ptr<const ProgramRegistry::Entry> ProgramRegistry::Find(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

Result<ProgramRegistry::Info> ProgramRegistry::ReplaceDatabase(
    const std::string& id, std::string db_text) {
  std::shared_ptr<const Entry> current = Find(id);
  if (current == nullptr) {
    return Status::NotFound("unknown program id: " + id);
  }
  ProgramSpec spec = current->spec;
  spec.db_text = std::move(db_text);
  // Only the database changed, so build through WithDatabase: the
  // already-optimized Σ_Π is adopted whenever the new database's summary
  // matches, skipping translation and the whole pass pipeline.
  GDLOG_ASSIGN_OR_RETURN(GDatalog engine,
                         GDatalog::WithDatabase(current->engine, spec.db_text));
  db_replacements_.fetch_add(1, std::memory_order_relaxed);
  if (engine.opt_stats().pipeline_reused) {
    pipeline_reuses_.fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("program removed during database replacement: " +
                            id);
  }
  // The revision we publish must supersede whatever is current *now* (a
  // concurrent replace may have won the race since Find()).
  uint64_t revision = it->second->revision + 1;
  by_hash_.erase(SpecHash(it->second->spec));
  auto entry = std::make_shared<const Entry>(id, revision, std::move(spec),
                                             std::move(engine));
  by_hash_[SpecHash(entry->spec)] = id;
  it->second = entry;
  return InfoFor(*entry, /*created=*/false);
}

Result<ProgramRegistry::DeltaResult> ProgramRegistry::ApplyDatabaseDelta(
    const std::string& id, const std::string& delta_text) {
  std::shared_ptr<const Entry> current = Find(id);
  if (current == nullptr) {
    return Status::NotFound("unknown program id: " + id);
  }
  // The expensive part — delta-proportional re-grounding — runs unlocked
  // against the snapshot we just read.
  GDLOG_ASSIGN_OR_RETURN(
      GDatalog engine,
      GDatalog::WithDatabaseDelta(current->engine, delta_text));

  DeltaResult result;
  result.base_revision = current->revision;
  result.delta_digest = DeltaDigest(delta_text);
  result.old_lineage_digest = current->lineage_digest;
  result.new_lineage_digest = ChainDigest(
      current->lineage_digest, current->revision, result.delta_digest);
  result.stats = engine.delta_stats();
  result.touches_rule_bodies = result.stats.touches_rule_bodies;
  result.added_facts = engine.delta_added_facts();

  // The published spec's db_text must reproduce the delta-applied store so
  // idempotent registration and demand-engine builds (which parse the spec
  // from scratch) see the same database.
  ProgramSpec spec = current->spec;
  if (!spec.db_text.empty() && spec.db_text.back() != '\n') {
    spec.db_text += '\n';
  }
  spec.db_text += delta_text;

  std::vector<LineageLink> lineage = current->lineage;
  lineage.push_back(LineageLink{current->revision, result.delta_digest});

  deltas_applied_.fetch_add(1, std::memory_order_relaxed);
  delta_rows_appended_.fetch_add(result.stats.rows_appended,
                                 std::memory_order_relaxed);
  delta_rules_refired_.fetch_add(result.stats.rules_refired,
                                 std::memory_order_relaxed);
  if (result.stats.pipeline_reused) {
    delta_pipeline_reuses_.fetch_add(1, std::memory_order_relaxed);
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("program removed during delta application: " + id);
  }
  // A delta is relative to the exact entry it was computed against. If a
  // concurrent PUT/PATCH published a different entry meanwhile, applying
  // ours on top would silently drop that update — reject instead.
  if (it->second != current) {
    return Status::AlreadyExists(
        "program " + id + " was updated concurrently (revision is now " +
        std::to_string(it->second->revision) + ", delta was against " +
        std::to_string(current->revision) + "); re-read and retry");
  }
  uint64_t revision = current->revision + 1;
  by_hash_.erase(SpecHash(it->second->spec));
  auto entry = std::make_shared<const Entry>(
      id, revision, std::move(spec), std::move(engine), std::move(lineage),
      result.new_lineage_digest);
  by_hash_[SpecHash(entry->spec)] = id;
  it->second = entry;
  result.info = InfoFor(*entry, /*created=*/false);
  result.entry = entry;
  return result;
}

Status ProgramRegistry::Remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("unknown program id: " + id);
  }
  auto hash_it = by_hash_.find(SpecHash(it->second->spec));
  if (hash_it != by_hash_.end() && hash_it->second == id) {
    by_hash_.erase(hash_it);
  }
  by_id_.erase(it);
  return Status::OK();
}

size_t ProgramRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_id_.size();
}

std::string ProgramRegistry::DemandSignature(std::vector<std::string> goals) {
  std::sort(goals.begin(), goals.end());
  goals.erase(std::unique(goals.begin(), goals.end()), goals.end());
  std::string signature;
  for (const std::string& goal : goals) {
    if (!signature.empty()) signature += ",";
    signature += goal;
  }
  return signature;
}

Result<std::shared_ptr<const GDatalog>> ProgramRegistry::DemandEngine(
    const Entry& entry, const std::vector<std::string>& goals) {
  std::string signature = DemandSignature(goals);
  {
    std::lock_guard<std::mutex> lock(entry.demand_mu);
    auto it = entry.demand_engines.find(signature);
    if (it != entry.demand_engines.end()) {
      demand_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Build unlocked (it is a full engine construction); racing queries for
  // the same signature may build twice, the insert below keeps the first.
  std::vector<std::string> sorted_goals(goals);
  std::sort(sorted_goals.begin(), sorted_goals.end());
  sorted_goals.erase(std::unique(sorted_goals.begin(), sorted_goals.end()),
                     sorted_goals.end());
  GDLOG_ASSIGN_OR_RETURN(GDatalog engine,
                         BuildEngine(entry.spec, std::move(sorted_goals)));
  demand_built_.fetch_add(1, std::memory_order_relaxed);
  auto built = std::make_shared<const GDatalog>(std::move(engine));
  std::lock_guard<std::mutex> lock(entry.demand_mu);
  auto [it, inserted] = entry.demand_engines.emplace(signature, built);
  (void)inserted;
  return it->second;
}

ProgramRegistry::OptCounters ProgramRegistry::opt_counters() const {
  OptCounters counters;
  counters.db_replacements = db_replacements_.load(std::memory_order_relaxed);
  counters.pipeline_reuses = pipeline_reuses_.load(std::memory_order_relaxed);
  counters.demand_engines_built =
      demand_built_.load(std::memory_order_relaxed);
  counters.demand_cache_hits = demand_hits_.load(std::memory_order_relaxed);
  return counters;
}

ProgramRegistry::DeltaCounters ProgramRegistry::delta_counters() const {
  DeltaCounters counters;
  counters.deltas_applied = deltas_applied_.load(std::memory_order_relaxed);
  counters.rows_appended =
      delta_rows_appended_.load(std::memory_order_relaxed);
  counters.rules_refired =
      delta_rules_refired_.load(std::memory_order_relaxed);
  counters.pipeline_reuses =
      delta_pipeline_reuses_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace gdlog
