#include "server/registry.h"

#include <utility>

#include "util/hash.h"

namespace gdlog {

Result<GDatalog> BuildEngine(const ProgramSpec& spec) {
  GDatalog::Options options;
  options.grounder = spec.grounder;
  if (spec.extensions) {
    auto registry = std::make_unique<DistributionRegistry>(
        DistributionRegistry::Builtins());
    ExtensionOptions extension_options;
    if (spec.normalgrid_max_cells >= 0) {
      extension_options.normalgrid_max_half_cells = spec.normalgrid_max_cells;
    }
    GDLOG_RETURN_IF_ERROR(
        RegisterExtensionDistributions(registry.get(), extension_options));
    options.registry = std::move(registry);
  }
  return GDatalog::Create(spec.program_text, spec.db_text,
                          std::move(options));
}

uint64_t ProgramRegistry::SpecHash(const ProgramSpec& spec) const {
  std::hash<std::string> h;
  size_t x = Mix64(h(spec.program_text));
  x = HashCombine(x, h(spec.db_text));
  x = HashCombine(x, static_cast<size_t>(spec.grounder));
  x = HashCombine(x, spec.extensions ? 1u : 0u);
  x = HashCombine(x, static_cast<size_t>(spec.normalgrid_max_cells));
  return x;
}

ProgramRegistry::Info ProgramRegistry::InfoFor(const Entry& entry,
                                               bool created) {
  Info info;
  info.id = entry.id;
  info.revision = entry.revision;
  info.stratified = entry.engine.stratified();
  info.grounder = std::string(entry.engine.grounder().name());
  info.created = created;
  return info;
}

Result<ProgramRegistry::Info> ProgramRegistry::Register(ProgramSpec spec) {
  uint64_t hash = SpecHash(spec);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_hash_.find(hash);
    if (it != by_hash_.end()) {
      auto existing = by_id_.find(it->second);
      if (existing != by_id_.end() && existing->second->spec == spec) {
        return InfoFor(*existing->second, /*created=*/false);
      }
    }
  }
  // Engine construction (parse/validate/translate/ground setup) is the
  // expensive part; run it unlocked so registrations don't block lookups.
  GDLOG_ASSIGN_OR_RETURN(GDatalog engine, BuildEngine(spec));
  std::lock_guard<std::mutex> lock(mu_);
  // Re-check: another thread may have registered the same spec meanwhile.
  auto it = by_hash_.find(hash);
  if (it != by_hash_.end()) {
    auto existing = by_id_.find(it->second);
    if (existing != by_id_.end() && existing->second->spec == spec) {
      return InfoFor(*existing->second, /*created=*/false);
    }
  }
  std::string id = "p" + std::to_string(next_id_++);
  auto entry = std::make_shared<const Entry>(id, /*revision=*/0,
                                             std::move(spec),
                                             std::move(engine));
  by_id_.emplace(id, entry);
  by_hash_[hash] = id;
  return InfoFor(*entry, /*created=*/true);
}

std::shared_ptr<const ProgramRegistry::Entry> ProgramRegistry::Find(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

Result<ProgramRegistry::Info> ProgramRegistry::ReplaceDatabase(
    const std::string& id, std::string db_text) {
  std::shared_ptr<const Entry> current = Find(id);
  if (current == nullptr) {
    return Status::NotFound("unknown program id: " + id);
  }
  ProgramSpec spec = current->spec;
  spec.db_text = std::move(db_text);
  GDLOG_ASSIGN_OR_RETURN(GDatalog engine, BuildEngine(spec));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("program removed during database replacement: " +
                            id);
  }
  // The revision we publish must supersede whatever is current *now* (a
  // concurrent replace may have won the race since Find()).
  uint64_t revision = it->second->revision + 1;
  by_hash_.erase(SpecHash(it->second->spec));
  auto entry = std::make_shared<const Entry>(id, revision, std::move(spec),
                                             std::move(engine));
  by_hash_[SpecHash(entry->spec)] = id;
  it->second = entry;
  return InfoFor(*entry, /*created=*/false);
}

Status ProgramRegistry::Remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("unknown program id: " + id);
  }
  auto hash_it = by_hash_.find(SpecHash(it->second->spec));
  if (hash_it != by_hash_.end() && hash_it->second == id) {
    by_hash_.erase(hash_it);
  }
  by_id_.erase(it);
  return Status::OK();
}

size_t ProgramRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_id_.size();
}

}  // namespace gdlog
