#include "server/registry.h"

#include <algorithm>
#include <utility>

#include "util/hash.h"

namespace gdlog {

Result<GDatalog> BuildEngine(const ProgramSpec& spec,
                             std::vector<std::string> demand_goals) {
  GDatalog::Options options;
  options.grounder = spec.grounder;
  options.demand_goals = std::move(demand_goals);
  if (spec.extensions) {
    auto registry = std::make_unique<DistributionRegistry>(
        DistributionRegistry::Builtins());
    ExtensionOptions extension_options;
    if (spec.normalgrid_max_cells >= 0) {
      extension_options.normalgrid_max_half_cells = spec.normalgrid_max_cells;
    }
    GDLOG_RETURN_IF_ERROR(
        RegisterExtensionDistributions(registry.get(), extension_options));
    options.registry = std::move(registry);
  }
  return GDatalog::Create(spec.program_text, spec.db_text,
                          std::move(options));
}

uint64_t ProgramRegistry::SpecHash(const ProgramSpec& spec) const {
  std::hash<std::string> h;
  size_t x = Mix64(h(spec.program_text));
  x = HashCombine(x, h(spec.db_text));
  x = HashCombine(x, static_cast<size_t>(spec.grounder));
  x = HashCombine(x, spec.extensions ? 1u : 0u);
  x = HashCombine(x, static_cast<size_t>(spec.normalgrid_max_cells));
  return x;
}

ProgramRegistry::Info ProgramRegistry::InfoFor(const Entry& entry,
                                               bool created) {
  Info info;
  info.id = entry.id;
  info.revision = entry.revision;
  info.stratified = entry.engine.stratified();
  info.grounder = std::string(entry.engine.grounder().name());
  info.created = created;
  return info;
}

Result<ProgramRegistry::Info> ProgramRegistry::Register(ProgramSpec spec) {
  uint64_t hash = SpecHash(spec);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_hash_.find(hash);
    if (it != by_hash_.end()) {
      auto existing = by_id_.find(it->second);
      if (existing != by_id_.end() && existing->second->spec == spec) {
        return InfoFor(*existing->second, /*created=*/false);
      }
    }
  }
  // Engine construction (parse/validate/translate/ground setup) is the
  // expensive part; run it unlocked so registrations don't block lookups.
  GDLOG_ASSIGN_OR_RETURN(GDatalog engine, BuildEngine(spec));
  std::lock_guard<std::mutex> lock(mu_);
  // Re-check: another thread may have registered the same spec meanwhile.
  auto it = by_hash_.find(hash);
  if (it != by_hash_.end()) {
    auto existing = by_id_.find(it->second);
    if (existing != by_id_.end() && existing->second->spec == spec) {
      return InfoFor(*existing->second, /*created=*/false);
    }
  }
  std::string id = "p" + std::to_string(next_id_++);
  auto entry = std::make_shared<const Entry>(id, /*revision=*/0,
                                             std::move(spec),
                                             std::move(engine));
  by_id_.emplace(id, entry);
  by_hash_[hash] = id;
  return InfoFor(*entry, /*created=*/true);
}

std::shared_ptr<const ProgramRegistry::Entry> ProgramRegistry::Find(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

Result<ProgramRegistry::Info> ProgramRegistry::ReplaceDatabase(
    const std::string& id, std::string db_text) {
  std::shared_ptr<const Entry> current = Find(id);
  if (current == nullptr) {
    return Status::NotFound("unknown program id: " + id);
  }
  ProgramSpec spec = current->spec;
  spec.db_text = std::move(db_text);
  // Only the database changed, so build through WithDatabase: the
  // already-optimized Σ_Π is adopted whenever the new database's summary
  // matches, skipping translation and the whole pass pipeline.
  GDLOG_ASSIGN_OR_RETURN(GDatalog engine,
                         GDatalog::WithDatabase(current->engine, spec.db_text));
  db_replacements_.fetch_add(1, std::memory_order_relaxed);
  if (engine.opt_stats().pipeline_reused) {
    pipeline_reuses_.fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("program removed during database replacement: " +
                            id);
  }
  // The revision we publish must supersede whatever is current *now* (a
  // concurrent replace may have won the race since Find()).
  uint64_t revision = it->second->revision + 1;
  by_hash_.erase(SpecHash(it->second->spec));
  auto entry = std::make_shared<const Entry>(id, revision, std::move(spec),
                                             std::move(engine));
  by_hash_[SpecHash(entry->spec)] = id;
  it->second = entry;
  return InfoFor(*entry, /*created=*/false);
}

Status ProgramRegistry::Remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("unknown program id: " + id);
  }
  auto hash_it = by_hash_.find(SpecHash(it->second->spec));
  if (hash_it != by_hash_.end() && hash_it->second == id) {
    by_hash_.erase(hash_it);
  }
  by_id_.erase(it);
  return Status::OK();
}

size_t ProgramRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_id_.size();
}

std::string ProgramRegistry::DemandSignature(std::vector<std::string> goals) {
  std::sort(goals.begin(), goals.end());
  goals.erase(std::unique(goals.begin(), goals.end()), goals.end());
  std::string signature;
  for (const std::string& goal : goals) {
    if (!signature.empty()) signature += ",";
    signature += goal;
  }
  return signature;
}

Result<std::shared_ptr<const GDatalog>> ProgramRegistry::DemandEngine(
    const Entry& entry, const std::vector<std::string>& goals) {
  std::string signature = DemandSignature(goals);
  {
    std::lock_guard<std::mutex> lock(entry.demand_mu);
    auto it = entry.demand_engines.find(signature);
    if (it != entry.demand_engines.end()) {
      demand_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Build unlocked (it is a full engine construction); racing queries for
  // the same signature may build twice, the insert below keeps the first.
  std::vector<std::string> sorted_goals(goals);
  std::sort(sorted_goals.begin(), sorted_goals.end());
  sorted_goals.erase(std::unique(sorted_goals.begin(), sorted_goals.end()),
                     sorted_goals.end());
  GDLOG_ASSIGN_OR_RETURN(GDatalog engine,
                         BuildEngine(entry.spec, std::move(sorted_goals)));
  demand_built_.fetch_add(1, std::memory_order_relaxed);
  auto built = std::make_shared<const GDatalog>(std::move(engine));
  std::lock_guard<std::mutex> lock(entry.demand_mu);
  auto [it, inserted] = entry.demand_engines.emplace(signature, built);
  (void)inserted;
  return it->second;
}

ProgramRegistry::OptCounters ProgramRegistry::opt_counters() const {
  OptCounters counters;
  counters.db_replacements = db_replacements_.load(std::memory_order_relaxed);
  counters.pipeline_reuses = pipeline_reuses_.load(std::memory_order_relaxed);
  counters.demand_engines_built =
      demand_built_.load(std::memory_order_relaxed);
  counters.demand_cache_hits = demand_hits_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace gdlog
