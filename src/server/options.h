#ifndef GDLOG_SERVER_OPTIONS_H_
#define GDLOG_SERVER_OPTIONS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "gdatalog/chase.h"
#include "gdatalog/grounder.h"
#include "server/http.h"
#include "server/registry.h"
#include "util/json.h"
#include "util/status.h"

namespace gdlog {

// Shared request parsing and response envelope helpers for every gdlogd
// endpoint (service.cc and fleet.cc). There is exactly one JSON →
// ChaseOptions parser so option names and range checks cannot drift
// between /v1/query, /v1/sample, /v1/shards and /v1/jobs.

// ---------------------------------------------------------------------------
// Request-body field readers. Bodies are untrusted: every access validates
// presence and type and surfaces a kInvalidArgument naming the field.
// ---------------------------------------------------------------------------

Result<std::string> RequiredString(const JsonValue& obj, std::string_view key);
Result<std::string> OptionalString(const JsonValue& obj, std::string_view key,
                                   std::string fallback);
Result<bool> OptionalBool(const JsonValue& obj, std::string_view key,
                          bool fallback);
Result<uint64_t> OptionalU64(const JsonValue& obj, std::string_view key,
                             uint64_t fallback);
Result<double> OptionalDouble(const JsonValue& obj, std::string_view key,
                              double fallback);

/// The request body as a JSON object (the only body shape any endpoint
/// accepts).
Result<JsonValue> ParseBody(const HttpRequest& request);

Result<GrounderKind> ParseGrounder(const std::string& name);

/// The wire name ParseGrounder accepts back ("auto", "simple", "perfect")
/// — used when a coordinator ships a registered spec to fleet workers.
const char* GrounderWireName(GrounderKind kind);

/// The program-registration fields — program (required), db, grounder,
/// extensions, normalgrid_max_cells — shared by POST /v1/programs and the
/// inline-program form of POST /v1/shards, so a spec a coordinator
/// distributes parses exactly like one a client registers.
Result<ProgramSpec> ParseProgramSpec(const JsonValue& body);

/// Applies the request's "options" object (if any) over `defaults`. Only
/// exploration budgets and determinism knobs are exposed; range checks
/// (min_path_prob in [0, 1], num_threads clamped to the hardware) live
/// here and nowhere else. keep_groundings/compute_models are owned by the
/// server.
Result<ChaseOptions> ReadChaseOptions(const JsonValue& body,
                                      ChaseOptions defaults);

// ---------------------------------------------------------------------------
// Response envelope. Every non-2xx body is HttpErrorBody's
// {"error":{"code","message"}} shape, codes from StatusCodeName.
// ---------------------------------------------------------------------------

/// Library Status → HTTP status. Client-caused failures (bad programs,
/// unknown ids, malformed bodies) map to 4xx; engine-side failures to 5xx.
int HttpStatusFor(const Status& status);

HttpResponse JsonResponse(int status, std::string body);
HttpResponse ErrorResponse(const Status& status);
HttpResponse MethodNotAllowed(const char* allowed);

}  // namespace gdlog

#endif  // GDLOG_SERVER_OPTIONS_H_
