#ifndef GDLOG_SERVER_FLEET_H_
#define GDLOG_SERVER_FLEET_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gdatalog/chase.h"
#include "gdatalog/shard.h"
#include "obs/histogram.h"
#include "server/cache.h"
#include "server/http.h"
#include "server/registry.h"

namespace gdlog {

/// The distributed chase dispatcher: the worker and coordinator halves of
/// gdlogd's fleet mode.
///
/// The whole protocol rides on one fact from PR 3: the shard plan is a
/// pure function of (program, database, grounder, options, shard count,
/// prefix depth, assignment policy), and per-shard partials merge — in
/// canonical choice-set order — into a space bit-identical to a
/// single-process run. So there is zero coordination state: a coordinator
/// ships the *query* (program spec + options + shard coordinates), every
/// worker recomputes the identical plan locally, and any worker can take
/// over any other worker's shard indices at any time.
///
///   POST /v1/shards   (worker) — explore shard indices of a plan.
///     Request: {program_id | program[, db, grounder, extensions,
///               normalgrid_max_cells], revision?, lineage?, options?,
///               shards, prefix_depth?, assignment?, shard_indices: [i...]}
///     The inline-program form registers the spec idempotently (the
///     registry's dedup makes re-sends free) — this is how a coordinator
///     distributes a program to workers that have never seen it; the
///     registry keeps db_text current across deltas, so a shipped spec
///     always reproduces the coordinator's database. Response 200 is
///     application/x-ndjson, Transfer-Encoding: chunked: one
///     PartialSpaceToJson line per requested index, in request order, each
///     emitted as soon as that shard finishes. Lines are served from the
///     worker-side partial cache when the same (fingerprint, plan
///     coordinates, index) was explored before, so retries, steals, and
///     repeated jobs skip the chase.
///
///   POST /v1/jobs     (coordinator) — run a query across a worker fleet.
///     Request: {program_id, options?, workers?: ["host:port"...],
///               shards?, prefix_depth?, assignment?, deadline_ms?,
///               steal?, steal_after_ms?, include_outcomes?,
///               include_models?, include_events?}
///     Plans shards (default: one per worker), dispatches shard groups
///     concurrently, and folds each partial line into a streaming merge
///     accumulator the moment it arrives — the coordinator holds O(1)
///     partials resident, not O(shards). A failed worker's undelivered
///     indices are re-dispatched to the remaining healthy workers; an
///     *idle* worker additionally steals the undelivered indices of a
///     straggler's in-flight exchange once it is `steal_after_ms` old
///     (any re-assignment of the pure plan is valid), with the first
///     delivered copy of a shard winning and late duplicates discarded
///     deterministically. The merged space is bit-identical to a
///     single-process run, so jobs and /query share cache entries. The
///     200 body is the same OutcomeSpaceToJson document /query produces
///     (byte-identical to `gdlog_cli --json`).
class FleetService {
 public:
  struct Options {
    /// Default worker list ("host:port") used when a job omits "workers".
    std::vector<std::string> default_workers;
    /// Default per-exchange deadline for worker requests; a worker that
    /// cannot deliver its partials within it — dead, wedged, or trickling
    /// — is abandoned and its shard indices are re-dispatched.
    int deadline_ms = 60'000;
    /// How long a dispatch must have been in flight before an idle worker
    /// may steal its undelivered shard indices (request override:
    /// "steal_after_ms"). High enough that healthy same-speed workers
    /// never duplicate work, low enough that one wedged worker cannot
    /// gate the makespan.
    int steal_after_ms = 250;
    /// Capacity of the worker-side partial cache (serialized NDJSON
    /// lines). 0 disables caching.
    size_t partial_cache_bytes = 64ull * 1024 * 1024;
    /// Baseline ChaseOptions (same as the service's /query defaults).
    ChaseOptions default_chase;
  };

  /// Wall-time span breakdown of one *computed* job (a cache hit computes
  /// nothing, so it has no spans). Every duration here is wall time —
  /// non-deterministic, reported only through the opt-in "spans" response
  /// block and the coordinator's log line, never through byte-identity
  /// surfaces.
  struct JobSpans {
    uint64_t plan_ns = 0;      ///< shard planning
    uint64_t dispatch_ns = 0;  ///< first wave + re-dispatch, end to end
    uint64_t merge_ns = 0;     ///< streaming-merge finish
    /// One entry per worker exchange the job dispatched, in completion
    /// order.
    struct Exchange {
      size_t exchange = 0;  ///< dispatch ordinal within the job
      size_t shards = 0;    ///< shard indices requested
      std::string worker;
      /// "dispatch" (first wave), "retry" (re-dispatch of a failed
      /// exchange's undelivered indices), or "steal" (speculative
      /// duplicate of a straggler's undelivered indices).
      const char* kind = "dispatch";
      bool ok = false;  ///< the exchange delivered every requested line
      uint64_t time_ns = 0;
    };
    std::vector<Exchange> exchanges;
  };

  /// Aggregated fleet counters for /v1/stats. All monotonic totals except
  /// the two gauges called out below.
  struct Counters {
    uint64_t shard_requests = 0;   ///< /v1/shards requests served.
    uint64_t shards_explored = 0;  ///< Shard indices explored locally.
    uint64_t jobs = 0;             ///< /v1/jobs requests served.
    uint64_t jobs_failed = 0;      ///< Jobs that returned non-2xx.
    uint64_t dispatches = 0;       ///< Worker exchanges attempted.
    uint64_t retries = 0;          ///< Failed groups re-dispatched.
    uint64_t steals = 0;           ///< Straggler exchanges duplicated.
    uint64_t worker_failures = 0;  ///< Worker exchanges that failed.
    uint64_t partials_merged = 0;  ///< Partials folded into job results.
    uint64_t partials_streamed = 0;  ///< Partial lines received mid-flight.
    uint64_t duplicate_partials = 0;  ///< Late duplicate lines discarded.
    uint64_t partial_cache_hits = 0;    ///< Worker cache served the line.
    uint64_t partial_cache_misses = 0;  ///< Worker cache had to chase.
    uint64_t jobs_in_flight = 0;  ///< GAUGE: jobs currently dispatching.
    /// GAUGE (high-water): most partials ever resident at once on the
    /// coordinator — bounded by the worker count, not the shard count,
    /// thanks to the streaming merge.
    uint64_t peak_resident_partials = 0;
  };

  /// Per-worker dispatch latency, keyed by "host:port".
  struct WorkerDispatchStats {
    uint64_t dispatches = 0;
    uint64_t max_ns = 0;
    LatencyHistogram::Snapshot hist;
  };

  /// Both pointees must outlive the service (the owning InferenceService
  /// guarantees this).
  FleetService(ProgramRegistry* registry, InferenceCache* cache,
               Options options)
      : registry_(registry),
        cache_(cache),
        options_(std::move(options)),
        partial_cache_(options_.partial_cache_bytes) {}

  HttpResponse HandleShards(const HttpRequest& request);
  /// `trace` is the coordinator request's trace id; it is forwarded to
  /// every worker exchange on X-Gdlog-Trace, so one id stitches the whole
  /// fan-out together across the fleet's access logs.
  HttpResponse HandleJobs(const HttpRequest& request,
                          const std::string& trace = "");

  Counters counters() const;

  /// Latency of individual worker exchanges (every dispatch, retry, and
  /// steal), for /v1/metrics.
  const LatencyHistogram& dispatch_histogram() const {
    return dispatch_hist_;
  }

  /// Per-worker view of the same exchanges, keyed by worker address.
  std::map<std::string, WorkerDispatchStats> WorkerDispatches() const;

  /// Drops worker-side cached partial lines whose key starts with
  /// `prefix` (the program id + '|') — called on db replacement, delta,
  /// and unregister, mirroring the inference cache's invalidation.
  void InvalidatePartials(std::string_view prefix) {
    partial_cache_.ErasePrefix(prefix);
  }

 private:
  /// Worker-side cache of serialized partial NDJSON lines, keyed by the
  /// inference fingerprint + resolved plan coordinates + shard index.
  /// Byte-bounded LRU; a hit streams the stored line without re-running
  /// the chase.
  class PartialCache {
   public:
    explicit PartialCache(size_t capacity_bytes)
        : capacity_(capacity_bytes) {}

    std::optional<std::string> Lookup(const std::string& key);
    void Insert(const std::string& key, const std::string& line);
    void ErasePrefix(std::string_view prefix);

   private:
    struct Entry {
      std::string key;
      std::string line;
    };
    std::mutex mu_;
    std::list<Entry> lru_;  ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index_;
    size_t bytes_ = 0;
    size_t capacity_ = 0;
  };

  /// The dispatch loop behind /v1/jobs: plans, runs one dispatch thread
  /// per worker over a shared work pool (seeded groups, failure
  /// re-dispatch, mid-job steals), folds every delivered partial line
  /// into a StreamingMerger on arrival, and finishes the merge once every
  /// shard was delivered exactly once. Pure with respect to the cache
  /// (the caller feeds the result through LookupOrCompute); `spans`
  /// (optional) receives the wall-time breakdown of this run.
  Result<OutcomeSpace> RunJob(const ProgramRegistry::Entry& entry,
                              const ChaseOptions& chase, size_t num_shards,
                              size_t prefix_depth, ShardAssignment assignment,
                              const std::vector<std::string>& workers,
                              int deadline_ms, bool steal, int steal_after_ms,
                              const std::string& trace, JobSpans* spans);

  void RecordWorkerDispatch(const std::string& worker, uint64_t ns);

  ProgramRegistry* registry_;
  InferenceCache* cache_;
  Options options_;

  std::atomic<uint64_t> shard_requests_{0};
  std::atomic<uint64_t> shards_explored_{0};
  std::atomic<uint64_t> jobs_{0};
  std::atomic<uint64_t> jobs_failed_{0};
  std::atomic<uint64_t> dispatches_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> worker_failures_{0};
  std::atomic<uint64_t> partials_merged_{0};
  std::atomic<uint64_t> partials_streamed_{0};
  std::atomic<uint64_t> duplicate_partials_{0};
  std::atomic<uint64_t> partial_cache_hits_{0};
  std::atomic<uint64_t> partial_cache_misses_{0};
  std::atomic<uint64_t> jobs_in_flight_{0};
  std::atomic<uint64_t> peak_resident_partials_{0};
  LatencyHistogram dispatch_hist_;

  struct WorkerStats {
    LatencyHistogram hist;
    uint64_t dispatches = 0;
    uint64_t max_ns = 0;
  };
  mutable std::mutex worker_mu_;
  /// std::map for node stability (LatencyHistogram holds atomics and can
  /// never move) and sorted, deterministic /stats and /metrics emission.
  std::map<std::string, WorkerStats> worker_stats_;

  PartialCache partial_cache_;
};

/// Splits "host:port" (the worker-list wire format). The port must be a
/// decimal in [1, 65535].
Result<std::pair<std::string, int>> ParseHostPort(const std::string& address);

}  // namespace gdlog

#endif  // GDLOG_SERVER_FLEET_H_
