#ifndef GDLOG_SERVER_FLEET_H_
#define GDLOG_SERVER_FLEET_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gdatalog/chase.h"
#include "gdatalog/shard.h"
#include "obs/histogram.h"
#include "server/cache.h"
#include "server/http.h"
#include "server/registry.h"

namespace gdlog {

/// The distributed chase dispatcher: the worker and coordinator halves of
/// gdlogd's fleet mode.
///
/// The whole protocol rides on one fact from PR 3: the shard plan is a
/// pure function of (program, database, grounder, options, shard count,
/// prefix depth, assignment policy), and per-shard partials merge — in
/// canonical choice-set order — into a space bit-identical to a
/// single-process run. So there is zero coordination state: a coordinator
/// ships the *query* (program spec + options + shard coordinates), every
/// worker recomputes the identical plan locally, and any worker can take
/// over any other worker's shard indices at any time.
///
///   POST /v1/shards   (worker) — explore shard indices of a plan.
///     Request: {program_id | program[, db, grounder, extensions,
///               normalgrid_max_cells], revision?, lineage?, options?,
///               shards, prefix_depth?, assignment?, shard_indices: [i...]}
///     The inline-program form registers the spec idempotently (the
///     registry's dedup makes re-sends free) — this is how a coordinator
///     distributes a program to workers that have never seen it; the
///     registry keeps db_text current across deltas, so a shipped spec
///     always reproduces the coordinator's database. Response 200 is
///     application/x-ndjson: one PartialSpaceToJson line per requested
///     index, in request order.
///
///   POST /v1/jobs     (coordinator) — run a query across a worker fleet.
///     Request: {program_id, options?, workers?: ["host:port"...],
///               shards?, prefix_depth?, assignment?, deadline_ms?,
///               include_outcomes?, include_models?, include_events?}
///     Plans shards (default: one per worker), dispatches shard groups
///     concurrently over HttpClient with a whole-request deadline, retries
///     a failed or straggling worker's indices on the remaining healthy
///     workers, merges the partials via MergePartialSpaces, and serves the
///     result through the normal InferenceCache fingerprint — the merged
///     space is bit-identical to a single-process run, so jobs and /query
///     share cache entries. The 200 body is the same OutcomeSpaceToJson
///     document /query produces (byte-identical to `gdlog_cli --json`).
class FleetService {
 public:
  struct Options {
    /// Default worker list ("host:port") used when a job omits "workers".
    std::vector<std::string> default_workers;
    /// Default per-exchange deadline for worker requests; a worker that
    /// cannot deliver its partials within it — dead, wedged, or trickling
    /// — is abandoned and its shard indices are re-dispatched.
    int deadline_ms = 60'000;
    /// Baseline ChaseOptions (same as the service's /query defaults).
    ChaseOptions default_chase;
  };

  /// Wall-time span breakdown of one *computed* job (a cache hit computes
  /// nothing, so it has no spans). Every duration here is wall time —
  /// non-deterministic, reported only through the opt-in "spans" response
  /// block and the coordinator's log line, never through byte-identity
  /// surfaces.
  struct JobSpans {
    uint64_t plan_ns = 0;      ///< shard planning
    uint64_t dispatch_ns = 0;  ///< first wave + re-dispatch, end to end
    uint64_t merge_ns = 0;     ///< coverage check + partial merge
    struct Group {
      size_t group = 0;     ///< shard-group index
      size_t shards = 0;    ///< shard indices in the group
      std::string worker;   ///< worker that finally delivered the group
      size_t attempts = 0;  ///< exchanges tried (1 = no re-dispatch)
      uint64_t time_ns = 0; ///< total exchange wall time across attempts
    };
    std::vector<Group> groups;
  };

  /// Aggregated fleet counters for /v1/stats (monotonic totals).
  struct Counters {
    uint64_t shard_requests = 0;   ///< /v1/shards requests served.
    uint64_t shards_explored = 0;  ///< Shard indices explored locally.
    uint64_t jobs = 0;             ///< /v1/jobs requests served.
    uint64_t jobs_failed = 0;      ///< Jobs that returned non-2xx.
    uint64_t dispatches = 0;       ///< Worker exchanges attempted.
    uint64_t retries = 0;          ///< Shard groups re-dispatched.
    uint64_t worker_failures = 0;  ///< Worker exchanges that failed.
    uint64_t partials_merged = 0;  ///< Partials merged into job results.
  };

  /// Both pointees must outlive the service (the owning InferenceService
  /// guarantees this).
  FleetService(ProgramRegistry* registry, InferenceCache* cache,
               Options options)
      : registry_(registry), cache_(cache), options_(std::move(options)) {}

  HttpResponse HandleShards(const HttpRequest& request);
  /// `trace` is the coordinator request's trace id; it is forwarded to
  /// every worker exchange on X-Gdlog-Trace, so one id stitches the whole
  /// fan-out together across the fleet's access logs.
  HttpResponse HandleJobs(const HttpRequest& request,
                          const std::string& trace = "");

  Counters counters() const;

  /// Latency of individual worker exchanges (each dispatch attempt, both
  /// waves), for /v1/metrics.
  const LatencyHistogram& dispatch_histogram() const {
    return dispatch_hist_;
  }

 private:
  /// The dispatch loop behind /v1/jobs: plans, fans the shard groups out
  /// to the workers concurrently, re-dispatches failed groups to healthy
  /// workers, validates coverage and merges. Pure with respect to the
  /// cache (the caller feeds the result through LookupOrCompute); `spans`
  /// (optional) receives the wall-time breakdown of this run.
  Result<OutcomeSpace> RunJob(const ProgramRegistry::Entry& entry,
                              const ChaseOptions& chase, size_t num_shards,
                              size_t prefix_depth, ShardAssignment assignment,
                              const std::vector<std::string>& workers,
                              int deadline_ms, const std::string& trace,
                              JobSpans* spans);

  ProgramRegistry* registry_;
  InferenceCache* cache_;
  Options options_;

  std::atomic<uint64_t> shard_requests_{0};
  std::atomic<uint64_t> shards_explored_{0};
  std::atomic<uint64_t> jobs_{0};
  std::atomic<uint64_t> jobs_failed_{0};
  std::atomic<uint64_t> dispatches_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> worker_failures_{0};
  std::atomic<uint64_t> partials_merged_{0};
  LatencyHistogram dispatch_hist_;
};

/// Splits "host:port" (the worker-list wire format). The port must be a
/// decimal in [1, 65535].
Result<std::pair<std::string, int>> ParseHostPort(const std::string& address);

}  // namespace gdlog

#endif  // GDLOG_SERVER_FLEET_H_
