#ifndef GDLOG_SERVER_SERVICE_H_
#define GDLOG_SERVER_SERVICE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "gdatalog/chase.h"
#include "obs/histogram.h"
#include "obs/profile.h"
#include "server/cache.h"
#include "server/fleet.h"
#include "server/http.h"
#include "server/registry.h"

namespace gdlog {

/// The gdlogd endpoint surface, factored away from the socket layer so
/// tests (and benchmarks) drive it in-process. Every method is
/// thread-safe; one instance serves every connection.
///
/// The surface is versioned: every endpoint lives under /v1/ (the full
/// contract — methods, schemas, error codes — is documented in
/// docs/API.md). The original unversioned paths remain as deprecated
/// aliases: same behavior, plus a "Deprecation: true" header and a Link
/// to the /v1 successor. Every non-2xx response, HTTP framing layer
/// included, carries the uniform {"error":{"code","message"}} envelope.
///
/// Endpoints (all request bodies are JSON):
///
///   POST   /v1/programs          register {program, db?, grounder?,
///                                extensions?, normalgrid_max_cells?};
///                                idempotent per spec; returns {id,
///                                revision, stratified, grounder, created}
///   GET    /v1/programs/<id>     registration info
///   PUT    /v1/programs/<id>/db  replace the database: {db}; bumps
///                                revision, starts a fresh delta lineage
///   PATCH  /v1/programs/<id>/db  apply a fact delta: {delta}; appends
///                                facts in cost proportional to the delta,
///                                bumps revision, chains the lineage
///                                digest, and either revalidates cached
///                                outcome spaces (delta provably outside
///                                every rule body) or evicts them; 409 on
///                                concurrent update
///   DELETE /v1/programs/<id>     unregister (drops the cache lines)
///   POST   /v1/query             exact inference: {program_id, options?,
///                                include_outcomes?, include_models?,
///                                include_events?, queries?, condition?}.
///                                Without "queries" the response body is
///                                the OutcomeSpaceToJson document —
///                                byte-identical to `gdlog_cli --json`
///                                with matching flags. With "queries" it
///                                reports credal marginal bounds per atom.
///                                Served through the InferenceCache.
///   POST   /v1/sample            Monte-Carlo: {program_id, samples,
///                                seed?, queries?, options?}; never cached
///   POST   /v1/shards            fleet worker: explore shard indices of
///                                a deterministic shard plan (fleet.h)
///   POST   /v1/jobs              fleet coordinator: distribute a query
///                                across workers and merge (fleet.h)
///   GET    /v1/healthz           liveness: {"status":"ok", version,
///                                uptime_s, pid}
///   GET    /v1/stats             per-subsystem counters: {server,
///                                registry, cache, opt, delta, fleet}
///   GET    /v1/metrics           Prometheus text exposition: every /stats
///                                counter plus latency histograms and
///                                per-rule chase-profile totals
///
/// Every response (errors included) echoes a request trace id on the
/// X-Gdlog-Trace header: the caller's value when it sent a well-formed
/// one, a freshly minted id otherwise. /v1/jobs forwards the id to every
/// worker exchange, so one id follows a query across the whole fleet.
class InferenceService {
 public:
  struct Options {
    /// InferenceCache bound.
    size_t cache_bytes = 256ull * 1024 * 1024;
    /// Baseline ChaseOptions for /query; requests override individual
    /// fields. Defaults match `gdlog_cli` so responses compare bytewise.
    ChaseOptions default_chase;
    /// Ceiling on /sample's sample count per request (untrusted input).
    size_t max_samples = 10'000'000;
    /// Default worker list for /v1/jobs (requests may override).
    std::vector<std::string> fleet_workers;
    /// Per-exchange deadline for fleet worker requests.
    int fleet_deadline_ms = 60'000;
    /// Age an in-flight worker exchange must reach before an idle worker
    /// may steal its undelivered shard indices.
    int fleet_steal_after_ms = 250;
    /// Worker-side partial cache capacity in bytes (0 disables it).
    size_t fleet_partial_cache_bytes = 64ull * 1024 * 1024;
  };

  explicit InferenceService(Options options);

  /// Routes one request. Never throws; all failures become JSON error
  /// bodies with 4xx/5xx statuses.
  HttpResponse Handle(const HttpRequest& request);

  ProgramRegistry& registry() { return registry_; }
  const InferenceCache& cache() const { return cache_; }
  const FleetService& fleet() const { return fleet_; }

 private:
  /// The per-endpoint request-latency histogram family. kOther covers
  /// unroutable targets (404s); /programs/<id>[/db] maps to kProgram.
  enum Endpoint : size_t {
    kHealthz,
    kStats,
    kMetrics,
    kPrograms,
    kProgram,
    kQuery,
    kSample,
    kShards,
    kJobs,
    kOther,
    kEndpointCount,
  };
  static Endpoint EndpointFor(const std::string& target);
  static const char* EndpointName(Endpoint endpoint);

  /// One coherent load of the service-owned atomics (each subsystem's
  /// counters() snapshot plays the same role), so /v1/stats and
  /// /v1/metrics render from a single point-in-time view instead of
  /// re-reading atomics mid-serialization.
  struct ServiceCounters {
    uint64_t requests = 0;
    uint64_t queries = 0;
    uint64_t samples = 0;
    uint64_t demand_queries = 0;
    uint64_t delta_patches = 0;
    uint64_t spaces_revalidated = 0;
    uint64_t spaces_evicted = 0;
  };
  ServiceCounters SnapshotCounters() const;

  /// Routes a version-stripped target ("/query" for both /query and
  /// /v1/query). `trace` is the request's trace id (already validated or
  /// minted by Handle); handlers that fan out forward it.
  HttpResponse Route(const HttpRequest& request, const std::string& target,
                     const std::string& trace);
  HttpResponse HandleRegister(const HttpRequest& request);
  HttpResponse HandleProgram(const HttpRequest& request,
                             const std::string& id, bool db_subresource);
  HttpResponse HandleQuery(const HttpRequest& request);
  HttpResponse HandleSample(const HttpRequest& request);
  HttpResponse HandleHealthz();
  HttpResponse HandleStats();
  HttpResponse HandleMetrics();

  /// Folds one profiled chase into the per-program rule totals exported by
  /// /v1/metrics. Labels come from the engine that actually ran (base or
  /// demand-transformed), indexed like profile.rules.
  void RecordRuleProfiles(const std::string& program_id,
                          const std::vector<std::string>& rule_labels,
                          const ChaseProfile& profile);

  Options options_;
  ProgramRegistry registry_;
  InferenceCache cache_;
  FleetService fleet_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> samples_{0};
  /// Marginal queries served through a demand-transformed engine.
  std::atomic<uint64_t> demand_queries_{0};
  /// PATCH /db requests that applied successfully.
  std::atomic<uint64_t> delta_patches_{0};
  /// Cached outcome spaces carried across a delta (patched + re-keyed)
  /// versus dropped because the delta touched rule bodies.
  std::atomic<uint64_t> spaces_revalidated_{0};
  std::atomic<uint64_t> spaces_evicted_{0};

  /// Request latency per endpoint, plus the two /query-internal phases:
  /// chase wall time (cache-miss computes only) and cache lookup overhead
  /// (LookupOrCompute time minus compute time).
  std::array<LatencyHistogram, kEndpointCount> request_hist_;
  LatencyHistogram chase_hist_;
  LatencyHistogram cache_lookup_hist_;

  /// Per-program, per-rule chase-profile totals (only fed by profiled
  /// queries — "profile": true). Keyed program id → rule label; registry
  /// entries are immutable snapshots, so the accumulation lives here.
  std::mutex profile_mu_;
  std::map<std::string, std::map<std::string, RuleProfile>> rule_profiles_;
};

}  // namespace gdlog

#endif  // GDLOG_SERVER_SERVICE_H_
