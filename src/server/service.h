#ifndef GDLOG_SERVER_SERVICE_H_
#define GDLOG_SERVER_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "gdatalog/chase.h"
#include "server/cache.h"
#include "server/fleet.h"
#include "server/http.h"
#include "server/registry.h"

namespace gdlog {

/// The gdlogd endpoint surface, factored away from the socket layer so
/// tests (and benchmarks) drive it in-process. Every method is
/// thread-safe; one instance serves every connection.
///
/// The surface is versioned: every endpoint lives under /v1/ (the full
/// contract — methods, schemas, error codes — is documented in
/// docs/API.md). The original unversioned paths remain as deprecated
/// aliases: same behavior, plus a "Deprecation: true" header and a Link
/// to the /v1 successor. Every non-2xx response, HTTP framing layer
/// included, carries the uniform {"error":{"code","message"}} envelope.
///
/// Endpoints (all request bodies are JSON):
///
///   POST   /v1/programs          register {program, db?, grounder?,
///                                extensions?, normalgrid_max_cells?};
///                                idempotent per spec; returns {id,
///                                revision, stratified, grounder, created}
///   GET    /v1/programs/<id>     registration info
///   PUT    /v1/programs/<id>/db  replace the database: {db}; bumps
///                                revision, starts a fresh delta lineage
///   PATCH  /v1/programs/<id>/db  apply a fact delta: {delta}; appends
///                                facts in cost proportional to the delta,
///                                bumps revision, chains the lineage
///                                digest, and either revalidates cached
///                                outcome spaces (delta provably outside
///                                every rule body) or evicts them; 409 on
///                                concurrent update
///   DELETE /v1/programs/<id>     unregister (drops the cache lines)
///   POST   /v1/query             exact inference: {program_id, options?,
///                                include_outcomes?, include_models?,
///                                include_events?, queries?, condition?}.
///                                Without "queries" the response body is
///                                the OutcomeSpaceToJson document —
///                                byte-identical to `gdlog_cli --json`
///                                with matching flags. With "queries" it
///                                reports credal marginal bounds per atom.
///                                Served through the InferenceCache.
///   POST   /v1/sample            Monte-Carlo: {program_id, samples,
///                                seed?, queries?, options?}; never cached
///   POST   /v1/shards            fleet worker: explore shard indices of
///                                a deterministic shard plan (fleet.h)
///   POST   /v1/jobs              fleet coordinator: distribute a query
///                                across workers and merge (fleet.h)
///   GET    /v1/healthz           liveness: {"status":"ok"}
///   GET    /v1/stats             per-subsystem counters: {server,
///                                registry, cache, opt, delta, fleet}
class InferenceService {
 public:
  struct Options {
    /// InferenceCache bound.
    size_t cache_bytes = 256ull * 1024 * 1024;
    /// Baseline ChaseOptions for /query; requests override individual
    /// fields. Defaults match `gdlog_cli` so responses compare bytewise.
    ChaseOptions default_chase;
    /// Ceiling on /sample's sample count per request (untrusted input).
    size_t max_samples = 10'000'000;
    /// Default worker list for /v1/jobs (requests may override).
    std::vector<std::string> fleet_workers;
    /// Per-exchange deadline for fleet worker requests.
    int fleet_deadline_ms = 60'000;
  };

  explicit InferenceService(Options options);

  /// Routes one request. Never throws; all failures become JSON error
  /// bodies with 4xx/5xx statuses.
  HttpResponse Handle(const HttpRequest& request);

  ProgramRegistry& registry() { return registry_; }
  const InferenceCache& cache() const { return cache_; }
  const FleetService& fleet() const { return fleet_; }

 private:
  /// Routes a version-stripped target ("/query" for both /query and
  /// /v1/query).
  HttpResponse Route(const HttpRequest& request, const std::string& target);
  HttpResponse HandleRegister(const HttpRequest& request);
  HttpResponse HandleProgram(const HttpRequest& request,
                             const std::string& id, bool db_subresource);
  HttpResponse HandleQuery(const HttpRequest& request);
  HttpResponse HandleSample(const HttpRequest& request);
  HttpResponse HandleStats();

  Options options_;
  ProgramRegistry registry_;
  InferenceCache cache_;
  FleetService fleet_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> samples_{0};
  /// Marginal queries served through a demand-transformed engine.
  std::atomic<uint64_t> demand_queries_{0};
  /// PATCH /db requests that applied successfully.
  std::atomic<uint64_t> delta_patches_{0};
  /// Cached outcome spaces carried across a delta (patched + re-keyed)
  /// versus dropped because the delta touched rule bodies.
  std::atomic<uint64_t> spaces_revalidated_{0};
  std::atomic<uint64_t> spaces_evicted_{0};
};

}  // namespace gdlog

#endif  // GDLOG_SERVER_SERVICE_H_
