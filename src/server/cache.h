#ifndef GDLOG_SERVER_CACHE_H_
#define GDLOG_SERVER_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "gdatalog/chase.h"
#include "gdatalog/outcome.h"

namespace gdlog {

/// Maps a canonical fingerprint of (program id, DB revision, the
/// semantics-affecting ChaseOptions) to a shared immutable OutcomeSpace.
///
/// Why exact results are cacheable at all: the chase is deterministic —
/// for a fixed program, database, grounder and budgets, Explore() produces
/// the identical outcome space for every thread count and schedule
/// whenever no budget binds (ChaseOptions::num_threads contract, pinned by
/// parallel_chase_test/shard_test). The fingerprint therefore names the
/// result, not the computation. When a budget does bind the space is one
/// valid truncation; the cache serves whichever was computed first, which
/// is no weaker than what a fresh run promises.
///
/// Concurrency: LRU-bounded by an approximate memory footprint, with
/// single-flight deduplication — N concurrent lookups of the same key run
/// one chase, and the other N-1 block until it lands (counted as
/// `coalesced`).
class InferenceCache {
 public:
  struct Stats {
    uint64_t hits = 0;         ///< Served from the cache.
    uint64_t misses = 0;       ///< Led a compute (one chase each).
    uint64_t coalesced = 0;    ///< Waited on another lookup's compute.
    uint64_t evictions = 0;    ///< Entries dropped to respect the bound.
    uint64_t inserts = 0;      ///< Entries ever stored.
    uint64_t revalidated = 0;  ///< Entries moved to a new lineage by
                               ///< Revalidate() instead of evicted.
    size_t entries = 0;        ///< Current entry count.
    size_t bytes = 0;          ///< Current approximate footprint.
    size_t capacity_bytes = 0;
  };

  using ComputeFn = std::function<Result<OutcomeSpace>()>;

  explicit InferenceCache(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Returns the cached space for `key`, or runs `compute` (outside the
  /// cache lock) and caches its result. Concurrent callers with the same
  /// key share one compute; a failed compute is returned to every waiter
  /// and never cached. A space larger than the whole capacity is returned
  /// uncached.
  Result<std::shared_ptr<const OutcomeSpace>> LookupOrCompute(
      const std::string& key, const ComputeFn& compute);

  /// Drops every entry whose key starts with `prefix` (fingerprints embed
  /// the program id first, so this is "forget program X"). Returns the
  /// number dropped; they count as evictions.
  size_t ErasePrefix(std::string_view prefix);

  void Clear();

  Stats stats() const;

  /// The identity half of a fingerprint: program id, DB revision and the
  /// delta-lineage digest (empty for a freshly registered or fully
  /// replaced database). Every fingerprint starts with this, so the delta
  /// path can move a whole revision's entries to a new lineage with one
  /// prefix rewrite.
  static std::string KeyPrefix(std::string_view program_id, uint64_t revision,
                               std::string_view lineage_digest);

  /// Canonical cache key: KeyPrefix plus exactly the ChaseOptions fields
  /// that affect the resulting space — max_outcomes, max_depth,
  /// support_limit, min_path_prob, trigger_shuffle_seed, solver_max_nodes.
  /// num_threads, incremental and keep_groundings are deliberately
  /// excluded (they change the computation, not the result);
  /// compute_models is forced true by the serving layer.
  static std::string Fingerprint(std::string_view program_id,
                                 uint64_t revision,
                                 std::string_view lineage_digest,
                                 const ChaseOptions& options);
  static std::string Fingerprint(std::string_view program_id,
                                 uint64_t revision,
                                 const ChaseOptions& options) {
    return Fingerprint(program_id, revision, "", options);
  }

  /// Lineage-keyed revalidation (the PATCH /db path for deltas that
  /// provably cannot change any grounding fixpoint): every entry under
  /// `old_prefix` is re-keyed under `new_prefix` (same option suffix)
  /// after passing its space through `patch`; entries under
  /// `program_prefix` but not `old_prefix` (older revisions/lineages) are
  /// dropped as ordinary evictions. A `patch` returning nullptr demotes
  /// that entry to an eviction; a re-keyed entry whose new key is already
  /// present (a fresh compute landed first) is skipped. Returns the number
  /// revalidated; `evicted`, when non-null, receives the number dropped.
  using PatchFn =
      std::function<std::shared_ptr<const OutcomeSpace>(const OutcomeSpace&)>;
  size_t Revalidate(std::string_view program_prefix,
                    std::string_view old_prefix, std::string_view new_prefix,
                    const PatchFn& patch, size_t* evicted = nullptr);

  /// Approximate heap footprint of a space (outcomes, choice sets, stable
  /// models) — the unit of the LRU bound.
  static size_t ApproxBytes(const OutcomeSpace& space);

 private:
  struct EntryData {
    std::shared_ptr<const OutcomeSpace> space;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  struct Inflight {
    bool done = false;
    Status status;
    std::shared_ptr<const OutcomeSpace> space;
  };

  /// Inserts under mu_ and evicts from the LRU tail until within bounds.
  void InsertLocked(const std::string& key,
                    std::shared_ptr<const OutcomeSpace> space);
  void EraseLocked(std::unordered_map<std::string, EntryData>::iterator it);

  const size_t capacity_bytes_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< signaled when an inflight completes
  std::unordered_map<std::string, EntryData> entries_;
  std::list<std::string> lru_;  ///< front = most recent
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;
  size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t coalesced_ = 0;
  uint64_t evictions_ = 0;
  uint64_t inserts_ = 0;
  uint64_t revalidated_ = 0;
};

}  // namespace gdlog

#endif  // GDLOG_SERVER_CACHE_H_
