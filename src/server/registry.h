#ifndef GDLOG_SERVER_REGISTRY_H_
#define GDLOG_SERVER_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "gdatalog/engine.h"

namespace gdlog {

/// Everything that determines a registered engine's semantics. Two specs
/// that compare equal produce interchangeable engines, which is what makes
/// registration idempotent (re-POSTing a program returns the existing id).
struct ProgramSpec {
  std::string program_text;
  std::string db_text;
  GrounderKind grounder = GrounderKind::kAuto;
  bool extensions = false;
  /// normalgrid half-width cap; < 0 = library default. Only meaningful
  /// with extensions.
  long long normalgrid_max_cells = -1;

  bool operator==(const ProgramSpec& other) const {
    return program_text == other.program_text && db_text == other.db_text &&
           grounder == other.grounder && extensions == other.extensions &&
           normalgrid_max_cells == other.normalgrid_max_cells;
  }
};

/// The server-side home of parsed programs: clients register a program+DB
/// once — paying for parse/validate/translate/grounder construction a
/// single time — and refer to it by a stable id on every query, so the
/// serving hot path never touches the lexer.
///
/// Entries are immutable once published (the engine inside is only used
/// through const, concurrency-safe entry points) and handed out as
/// shared_ptr<const Entry>: a Remove() or ReplaceDatabase() never
/// invalidates an engine a concurrent query is still chasing.
/// One applied delta in an entry's lineage chain: which revision it
/// extended and a digest of the delta text.
struct LineageLink {
  uint64_t base_revision = 0;
  std::string delta_digest;
};

class ProgramRegistry {
 public:
  struct Entry {
    std::string id;
    /// Bumped by ReplaceDatabase/ApplyDatabaseDelta; (id, revision) names
    /// one exact (program, DB) pair forever, which is what inference-cache
    /// keys build on.
    uint64_t revision = 0;
    ProgramSpec spec;
    GDatalog engine;
    /// Delta lineage since the last full registration/replacement, oldest
    /// first (empty right after Register/ReplaceDatabase — a full
    /// replacement starts a fresh lineage).
    std::vector<LineageLink> lineage;
    /// Rolling digest over the lineage chain; cache fingerprints embed it
    /// (InferenceCache::KeyPrefix) so a delta-produced revision names its
    /// exact derivation history.
    std::string lineage_digest;

    Entry(std::string id_in, uint64_t revision_in, ProgramSpec spec_in,
          GDatalog engine_in, std::vector<LineageLink> lineage_in = {},
          std::string lineage_digest_in = {})
        : id(std::move(id_in)),
          revision(revision_in),
          spec(std::move(spec_in)),
          engine(std::move(engine_in)),
          lineage(std::move(lineage_in)),
          lineage_digest(std::move(lineage_digest_in)) {}

    /// Demand-transformed sibling engines for marginal queries, keyed by
    /// goal-signature (see DemandSignature), built lazily by
    /// DemandEngine(). Mutable because entries are published as
    /// shared_ptr<const Entry>; a ReplaceDatabase publishes a fresh Entry,
    /// so stale demand engines can never serve a newer database.
    mutable std::mutex demand_mu;
    mutable std::unordered_map<std::string, std::shared_ptr<const GDatalog>>
        demand_engines;
  };

  struct Info {
    std::string id;
    uint64_t revision = 0;
    bool stratified = false;
    std::string grounder;
    /// False when Register() matched an existing identical spec.
    bool created = true;
  };

  /// Parses/validates/translates the spec into a live engine and publishes
  /// it under a fresh id — or, when an entry with an identical spec
  /// already exists, returns that entry's info with created == false.
  /// Engine construction runs outside the registry lock.
  Result<Info> Register(ProgramSpec spec);

  /// The entry for `id`, or nullptr.
  std::shared_ptr<const Entry> Find(const std::string& id) const;

  /// Rebuilds `id`'s engine against a new database (same program text and
  /// options) and publishes it under the same id with revision + 1. Starts
  /// a fresh (empty) delta lineage.
  Result<Info> ReplaceDatabase(const std::string& id, std::string db_text);

  /// Everything the serving layer needs to act on an applied delta: the
  /// published entry plus the lineage transition (for cache revalidation)
  /// and the engine's own DeltaStats.
  struct DeltaResult {
    Info info;
    uint64_t base_revision = 0;
    std::string delta_digest;
    /// Lineage digest before/after this delta — the cache's old and new
    /// KeyPrefix inputs.
    std::string old_lineage_digest;
    std::string new_lineage_digest;
    /// True when some delta predicate occurs in a rule body of Π (or is a
    /// reserved "__" predicate): cached spaces for this program must be
    /// evicted, not revalidated.
    bool touches_rule_bodies = false;
    DeltaStats stats;
    /// The facts actually appended (duplicates excluded) — the cache
    /// revalidation patch (OutcomeSpace::WithAddedFacts) input.
    std::vector<GroundAtom> added_facts;
    std::shared_ptr<const Entry> entry;
  };

  /// Applies a fact delta to `id`'s database via
  /// GDatalog::WithDatabaseDelta — cost proportional to the delta, not the
  /// database — and publishes the result under revision + 1 with the delta
  /// appended to the lineage chain. Unlike ReplaceDatabase (last writer
  /// wins), a delta is *relative* to the revision it was computed against:
  /// if another update published concurrently, returns kAlreadyExists so
  /// the caller can re-read and retry rather than silently dropping the
  /// other update.
  Result<DeltaResult> ApplyDatabaseDelta(const std::string& id,
                                         const std::string& delta_text);

  /// Unregisters `id`. In-flight queries holding the entry keep it alive.
  Status Remove(const std::string& id);

  size_t size() const;

  /// The engine of `entry` re-optimized with the magic-sets demand pass for
  /// `goals` (predicate names the caller will observe marginals of).
  /// Cached on the entry per goal signature — the first marginal query of
  /// a signature pays one engine build, repeats are a map lookup.
  Result<std::shared_ptr<const GDatalog>> DemandEngine(
      const Entry& entry, const std::vector<std::string>& goals);

  /// Canonical cache/fingerprint key for a goal set: sorted, deduplicated,
  /// comma-joined predicate names.
  static std::string DemandSignature(std::vector<std::string> goals);

  /// Pass-pipeline observability counters, aggregated across entries.
  struct OptCounters {
    uint64_t db_replacements = 0;
    /// ReplaceDatabase calls that adopted the already-optimized Σ_Π
    /// because the new database's summary matched.
    uint64_t pipeline_reuses = 0;
    uint64_t demand_engines_built = 0;
    uint64_t demand_cache_hits = 0;
  };
  OptCounters opt_counters() const;

  /// Incremental-update observability counters, aggregated across entries.
  struct DeltaCounters {
    uint64_t deltas_applied = 0;
    uint64_t rows_appended = 0;
    uint64_t rules_refired = 0;
    /// Deltas whose DB summary stayed pipeline-equivalent, so the
    /// optimized Σ_Π (and the simple grounder's root cache) was reused.
    uint64_t pipeline_reuses = 0;
  };
  DeltaCounters delta_counters() const;

  static Info InfoFor(const Entry& entry, bool created);

 private:
  uint64_t SpecHash(const ProgramSpec& spec) const;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const Entry>> by_id_;
  /// Current-content index for idempotent registration: spec hash → id
  /// (collisions resolved by comparing the stored spec).
  std::unordered_map<uint64_t, std::string> by_hash_;
  uint64_t next_id_ = 1;
  std::atomic<uint64_t> db_replacements_{0};
  std::atomic<uint64_t> pipeline_reuses_{0};
  std::atomic<uint64_t> demand_built_{0};
  std::atomic<uint64_t> demand_hits_{0};
  std::atomic<uint64_t> deltas_applied_{0};
  std::atomic<uint64_t> delta_rows_appended_{0};
  std::atomic<uint64_t> delta_rules_refired_{0};
  std::atomic<uint64_t> delta_pipeline_reuses_{0};
};

/// Builds an engine for a spec — the one translation of ProgramSpec into
/// GDatalog::Options (distribution extensions included) shared by
/// Register and ReplaceDatabase. Non-empty `demand_goals` enables the
/// magic-sets demand pass for those predicates.
Result<GDatalog> BuildEngine(const ProgramSpec& spec,
                             std::vector<std::string> demand_goals = {});

}  // namespace gdlog

#endif  // GDLOG_SERVER_REGISTRY_H_
