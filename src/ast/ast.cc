#include <cassert>
#include <set>

#include "ast/atom.h"
#include "ast/program.h"
#include "ast/rule.h"
#include "ast/term.h"
#include "util/interner.h"

namespace gdlog {

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

std::string Term::ToString(const Interner* interner) const {
  if (is_constant()) return constant_.ToString(interner);
  if (interner != nullptr) return interner->Name(var_id_);
  return "V" + std::to_string(var_id_);
}

std::string DeltaTerm::ToString(const Interner* interner) const {
  std::string out =
      interner != nullptr ? interner->Name(dist_id) : "d" + std::to_string(dist_id);
  out += "<";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i > 0) out += ", ";
    out += params[i].ToString(interner);
  }
  out += ">";
  if (!events.empty()) {
    out += "[";
    for (size_t i = 0; i < events.size(); ++i) {
      if (i > 0) out += ", ";
      out += events[i].ToString(interner);
    }
    out += "]";
  }
  return out;
}

std::string HeadArg::ToString(const Interner* interner) const {
  return is_delta_ ? delta_.ToString(interner) : term_.ToString(interner);
}

std::string Atom::ToString(const Interner* interner) const {
  std::string out =
      interner != nullptr ? interner->Name(predicate) : "p" + std::to_string(predicate);
  if (args.empty()) return out;
  out += "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString(interner);
  }
  out += ")";
  return out;
}

std::string Literal::ToString(const Interner* interner) const {
  return (negated ? "not " : "") + atom.ToString(interner);
}

std::string HeadAtom::ToString(const Interner* interner) const {
  std::string out =
      interner != nullptr ? interner->Name(predicate) : "p" + std::to_string(predicate);
  if (args.empty()) return out;
  out += "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString(interner);
  }
  out += ")";
  return out;
}

bool Rule::IsFact() const {
  if (is_constraint || !body.empty()) return false;
  for (const HeadArg& a : head.args) {
    if (a.is_delta() || !a.term().is_constant()) return false;
  }
  return true;
}

std::string Rule::ToString(const Interner* interner) const {
  std::string out;
  if (!is_constraint) out += head.ToString(interner);
  if (body.empty()) {
    out += ".";
    return out;
  }
  out += " :- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += body[i].ToString(interner);
  }
  out += ".";
  return out;
}

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

namespace {

void CollectTermVars(const Term& t, std::set<uint32_t>* vars) {
  if (t.is_variable()) vars->insert(t.var_id());
}

void CollectAtomVars(const Atom& a, std::set<uint32_t>* vars) {
  for (const Term& t : a.args) CollectTermVars(t, vars);
}

void CollectHeadVars(const HeadAtom& h, std::set<uint32_t>* vars) {
  for (const HeadArg& arg : h.args) {
    if (arg.is_delta()) {
      for (const Term& t : arg.delta().params) CollectTermVars(t, vars);
      for (const Term& t : arg.delta().events) CollectTermVars(t, vars);
    } else {
      CollectTermVars(arg.term(), vars);
    }
  }
}

}  // namespace

Status Program::Validate() const {
  std::map<uint32_t, size_t> arities;
  auto check_arity = [&](uint32_t pred, size_t arity) -> Status {
    auto [it, inserted] = arities.emplace(pred, arity);
    if (!inserted && it->second != arity) {
      return Status::InvalidArgument(
          "predicate '" + interner_->Name(pred) + "' used with arities " +
          std::to_string(it->second) + " and " + std::to_string(arity));
    }
    return Status::OK();
  };

  for (size_t ri = 0; ri < rules_.size(); ++ri) {
    const Rule& rule = rules_[ri];
    auto rule_err = [&](const std::string& what) {
      return Status::UnsafeProgram("rule #" + std::to_string(ri) + " (" +
                                   rule.ToString(interner_.get()) + "): " + what);
    };

    std::set<uint32_t> positive_vars;
    for (const Literal& lit : rule.body) {
      GDLOG_RETURN_IF_ERROR(check_arity(lit.atom.predicate, lit.atom.arity()));
      if (!lit.negated) CollectAtomVars(lit.atom, &positive_vars);
    }

    // Safety of negative literals.
    for (const Literal& lit : rule.body) {
      if (!lit.negated) continue;
      std::set<uint32_t> vars;
      CollectAtomVars(lit.atom, &vars);
      for (uint32_t v : vars) {
        if (positive_vars.count(v) == 0) {
          return rule_err("variable '" + interner_->Name(v) +
                          "' in negative literal not bound by a positive "
                          "body atom");
        }
      }
    }

    if (rule.is_constraint) {
      if (!rule.head.args.empty() || rule.head.predicate != 0) {
        // Constraints are represented with a default-constructed head.
      }
      if (rule.body.empty()) {
        return rule_err("constraint with empty body");
      }
      continue;
    }

    GDLOG_RETURN_IF_ERROR(check_arity(rule.head.predicate, rule.head.arity()));

    // Safety / range restriction of the head, including Δ-term internals.
    std::set<uint32_t> head_vars;
    CollectHeadVars(rule.head, &head_vars);
    for (uint32_t v : head_vars) {
      if (positive_vars.count(v) == 0) {
        return rule_err("head variable '" + interner_->Name(v) +
                        "' not bound by a positive body atom");
      }
    }

    // Δ-terms must have non-empty parameter tuples.
    for (const HeadArg& arg : rule.head.args) {
      if (arg.is_delta() && arg.delta().params.empty()) {
        return rule_err("Δ-term with empty parameter tuple");
      }
    }
  }
  return Status::OK();
}

std::set<uint32_t> Program::Predicates() const {
  std::set<uint32_t> out;
  for (const Rule& rule : rules_) {
    if (!rule.is_constraint) out.insert(rule.head.predicate);
    for (const Literal& lit : rule.body) out.insert(lit.atom.predicate);
  }
  return out;
}

std::set<uint32_t> Program::IntensionalPredicates() const {
  std::set<uint32_t> out;
  for (const Rule& rule : rules_) {
    if (!rule.is_constraint) out.insert(rule.head.predicate);
  }
  return out;
}

std::set<uint32_t> Program::ExtensionalPredicates() const {
  std::set<uint32_t> all = Predicates();
  for (uint32_t p : IntensionalPredicates()) all.erase(p);
  return all;
}

std::map<uint32_t, size_t> Program::Arities() const {
  std::map<uint32_t, size_t> out;
  for (const Rule& rule : rules_) {
    if (!rule.is_constraint) out.emplace(rule.head.predicate, rule.head.arity());
    for (const Literal& lit : rule.body) {
      out.emplace(lit.atom.predicate, lit.atom.arity());
    }
  }
  return out;
}

bool Program::IsPositive() const {
  for (const Rule& rule : rules_) {
    for (const Literal& lit : rule.body) {
      if (lit.negated) return false;
    }
  }
  return true;
}

bool Program::IsPlain() const {
  for (const Rule& rule : rules_) {
    if (!rule.IsPlain()) return false;
  }
  return true;
}

std::pair<uint32_t, uint32_t> Program::DesugarConstraints() {
  bool any = false;
  for (const Rule& rule : rules_) {
    if (rule.is_constraint) {
      any = true;
      break;
    }
  }
  uint32_t fail = interner_->Intern("__fail");
  uint32_t aux = interner_->Intern("__aux");
  if (!any) return {fail, aux};

  for (Rule& rule : rules_) {
    if (!rule.is_constraint) continue;
    rule.is_constraint = false;
    rule.head = HeadAtom{fail, {}};
  }
  if (!has_fail_) {
    // Fail, ¬Aux → Aux  — forces Fail to be false in every stable model.
    Rule killer;
    killer.head = HeadAtom{aux, {}};
    killer.body.push_back(Literal{Atom{fail, {}}, /*negated=*/false});
    killer.body.push_back(Literal{Atom{aux, {}}, /*negated=*/true});
    rules_.push_back(std::move(killer));
    has_fail_ = true;
    fail_predicate_ = fail;
  }
  return {fail, aux};
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& rule : rules_) {
    out += rule.ToString(interner_.get());
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Slot numbering
// ---------------------------------------------------------------------------

RuleSlots NumberRuleSlots(const Rule& rule) {
  RuleSlots slots;
  auto add = [&slots](const Term& t) {
    if (!t.is_variable()) return;
    assert(slots.slot_of.size() < 65536 && "rule exceeds 16-bit slot space");
    slots.slot_of.emplace(t.var_id(),
                          static_cast<uint16_t>(slots.slot_of.size()));
  };
  for (const Literal& lit : rule.body) {
    if (lit.negated) continue;
    for (const Term& t : lit.atom.args) add(t);
  }
  for (const Literal& lit : rule.body) {
    if (!lit.negated) continue;
    for (const Term& t : lit.atom.args) add(t);
  }
  for (const HeadArg& arg : rule.head.args) {
    if (arg.is_delta()) {
      for (const Term& t : arg.delta().params) add(t);
      for (const Term& t : arg.delta().events) add(t);
    } else {
      add(arg.term());
    }
  }
  return slots;
}

}  // namespace gdlog
