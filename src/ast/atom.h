#ifndef GDLOG_AST_ATOM_H_
#define GDLOG_AST_ATOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ast/term.h"

namespace gdlog {

/// A relational atom R(t1,...,tn) over ordinary terms; used in rule bodies
/// and (when no Δ-term is present) in heads.
struct Atom {
  uint32_t predicate = 0;  ///< Interned predicate name.
  std::vector<Term> args;

  size_t arity() const { return args.size(); }

  bool operator==(const Atom& other) const {
    return predicate == other.predicate && args == other.args;
  }

  std::string ToString(const Interner* interner = nullptr) const;
};

/// A body literal: an atom or its stable negation ¬R(t̄).
struct Literal {
  Atom atom;
  bool negated = false;

  bool operator==(const Literal& other) const {
    return negated == other.negated && atom == other.atom;
  }

  std::string ToString(const Interner* interner = nullptr) const;
};

/// A Δ-atom R(u1,...,un) where each position is an ordinary term or a
/// Δ-term (§3). Appears only as a rule head.
struct HeadAtom {
  uint32_t predicate = 0;
  std::vector<HeadArg> args;

  size_t arity() const { return args.size(); }

  /// True iff no argument is a Δ-term.
  bool IsPlain() const {
    for (const HeadArg& a : args) {
      if (a.is_delta()) return false;
    }
    return true;
  }

  /// Number of Δ-term arguments.
  size_t DeltaCount() const {
    size_t n = 0;
    for (const HeadArg& a : args) n += a.is_delta() ? 1 : 0;
    return n;
  }

  bool operator==(const HeadAtom& other) const {
    return predicate == other.predicate && args == other.args;
  }

  std::string ToString(const Interner* interner = nullptr) const;
};

}  // namespace gdlog

#endif  // GDLOG_AST_ATOM_H_
