#include "ast/parser.h"

#include <utility>

#include "ast/lexer.h"

namespace gdlog {

namespace {

class ParserImpl {
 public:
  ParserImpl(std::vector<Token> tokens, std::shared_ptr<Interner> interner)
      : tokens_(std::move(tokens)), program_(std::move(interner)) {}

  Result<Program> Run() {
    while (!Check(TokenKind::kEof)) {
      Status st = ParseRule();
      if (!st.ok()) return st;
    }
    return std::move(program_);
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekNext() const {
    return pos_ + 1 < tokens_.size() ? tokens_[pos_ + 1] : tokens_.back();
  }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }

  Status Err(const std::string& msg) {
    const Token& tok = Peek();
    return Status::ParseError("line " + std::to_string(tok.line) + ":" +
                              std::to_string(tok.column) + ": " + msg +
                              " (got " + std::string(TokenKindName(tok.kind)) +
                              (tok.text.empty() ? "" : " '" + tok.text + "'") +
                              ")");
  }

  Status Expect(TokenKind kind, const char* what) {
    if (!Match(kind)) {
      return Err(std::string("expected ") + what);
    }
    return Status::OK();
  }

  Interner* interner() { return program_.interner(); }

  Status ParseRule() {
    Rule rule;
    if (Match(TokenKind::kImplies)) {
      // Constraint ":- body."
      rule.is_constraint = true;
      GDLOG_RETURN_IF_ERROR(ParseBody(&rule.body));
      GDLOG_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.' after constraint"));
      program_.AddRule(std::move(rule));
      return Status::OK();
    }
    GDLOG_RETURN_IF_ERROR(ParseHeadAtom(&rule.head));
    if (Match(TokenKind::kImplies)) {
      GDLOG_RETURN_IF_ERROR(ParseBody(&rule.body));
    }
    GDLOG_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.' after rule"));
    program_.AddRule(std::move(rule));
    return Status::OK();
  }

  Status ParseBody(std::vector<Literal>* body) {
    for (;;) {
      Literal lit;
      if (Match(TokenKind::kNot)) lit.negated = true;
      GDLOG_RETURN_IF_ERROR(ParseAtom(&lit.atom));
      body->push_back(std::move(lit));
      if (!Match(TokenKind::kComma)) break;
    }
    return Status::OK();
  }

  Status ParseAtom(Atom* atom) {
    if (!Check(TokenKind::kIdent)) return Err("expected predicate name");
    atom->predicate = interner()->Intern(Advance().text);
    if (!Match(TokenKind::kLParen)) return Status::OK();  // 0-ary atom
    for (;;) {
      Term t;
      GDLOG_RETURN_IF_ERROR(ParseTerm(&t));
      atom->args.push_back(t);
      if (!Match(TokenKind::kComma)) break;
    }
    return Expect(TokenKind::kRParen, "')' after atom arguments");
  }

  Status ParseHeadAtom(HeadAtom* head) {
    if (!Check(TokenKind::kIdent)) return Err("expected predicate name");
    head->predicate = interner()->Intern(Advance().text);
    if (!Match(TokenKind::kLParen)) return Status::OK();
    for (;;) {
      HeadArg arg;
      GDLOG_RETURN_IF_ERROR(ParseHeadArg(&arg));
      head->args.push_back(std::move(arg));
      if (!Match(TokenKind::kComma)) break;
    }
    return Expect(TokenKind::kRParen, "')' after head arguments");
  }

  Status ParseHeadArg(HeadArg* arg) {
    // A Δ-term starts with ident '<'.
    if (Check(TokenKind::kIdent) && PeekNext().kind == TokenKind::kLAngle) {
      DeltaTerm delta;
      delta.dist_id = interner()->Intern(Advance().text);
      Advance();  // '<'
      for (;;) {
        Term t;
        GDLOG_RETURN_IF_ERROR(ParseTerm(&t));
        delta.params.push_back(t);
        if (!Match(TokenKind::kComma)) break;
      }
      GDLOG_RETURN_IF_ERROR(
          Expect(TokenKind::kRAngle, "'>' after distribution parameters"));
      if (Match(TokenKind::kLBracket)) {
        if (!Check(TokenKind::kRBracket)) {
          for (;;) {
            Term t;
            GDLOG_RETURN_IF_ERROR(ParseTerm(&t));
            delta.events.push_back(t);
            if (!Match(TokenKind::kComma)) break;
          }
        }
        GDLOG_RETURN_IF_ERROR(
            Expect(TokenKind::kRBracket, "']' after event signature"));
      }
      *arg = HeadArg(std::move(delta));
      return Status::OK();
    }
    Term t;
    GDLOG_RETURN_IF_ERROR(ParseTerm(&t));
    *arg = HeadArg(t);
    return Status::OK();
  }

  Status ParseTerm(Term* term) {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kVariable:
        *term = Term::Variable(interner()->Intern(Advance().text));
        return Status::OK();
      case TokenKind::kInt:
        *term = Term::Constant(Value::Int(Advance().int_value));
        return Status::OK();
      case TokenKind::kDouble:
        *term = Term::Constant(Value::Double(Advance().double_value));
        return Status::OK();
      case TokenKind::kMinus: {
        Advance();
        if (Check(TokenKind::kInt)) {
          *term = Term::Constant(Value::Int(-Advance().int_value));
          return Status::OK();
        }
        if (Check(TokenKind::kDouble)) {
          *term = Term::Constant(Value::Double(-Advance().double_value));
          return Status::OK();
        }
        return Err("expected number after '-'");
      }
      case TokenKind::kString:
        *term =
            Term::Constant(Value::Symbol(interner()->Intern(Advance().text)));
        return Status::OK();
      case TokenKind::kTrue:
        Advance();
        *term = Term::Constant(Value::Bool(true));
        return Status::OK();
      case TokenKind::kFalse:
        Advance();
        *term = Term::Constant(Value::Bool(false));
        return Status::OK();
      case TokenKind::kIdent:
        *term =
            Term::Constant(Value::Symbol(interner()->Intern(Advance().text)));
        return Status::OK();
      default:
        return Err("expected term");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Program program_;
};

}  // namespace

Result<Program> ParseProgram(std::string_view source,
                             std::shared_ptr<Interner> interner) {
  auto tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  if (interner == nullptr) interner = std::make_shared<Interner>();
  return ParserImpl(std::move(tokens).value(), std::move(interner)).Run();
}

}  // namespace gdlog
