#include "ast/lexer.h"

#include <cctype>
#include <cstdlib>

namespace gdlog {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kInt: return "integer";
    case TokenKind::kDouble: return "float";
    case TokenKind::kString: return "string";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLAngle: return "'<'";
    case TokenKind::kRAngle: return "'>'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kImplies: return "':-'";
    case TokenKind::kNot: return "'not'";
    case TokenKind::kTrue: return "'true'";
    case TokenKind::kFalse: return "'false'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

namespace {

// Local helper: propagate a Status as the lexer's Result error.
#define GDLOG_RETURN_IF_ERROR_RES(expr)                    \
  do {                                                     \
    ::gdlog::Status _st = (expr);                          \
    if (!_st.ok()) return _st;                             \
  } while (0)

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    for (;;) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      Token tok;
      tok.line = line_;
      tok.column = column_;
      char c = Peek();
      if (c == '(') { tok.kind = TokenKind::kLParen; Advance(); }
      else if (c == ')') { tok.kind = TokenKind::kRParen; Advance(); }
      else if (c == '[') { tok.kind = TokenKind::kLBracket; Advance(); }
      else if (c == ']') { tok.kind = TokenKind::kRBracket; Advance(); }
      else if (c == '<') { tok.kind = TokenKind::kLAngle; Advance(); }
      else if (c == '>') { tok.kind = TokenKind::kRAngle; Advance(); }
      else if (c == ',') { tok.kind = TokenKind::kComma; Advance(); }
      else if (c == '.') {
        // Distinguish end-of-rule '.' from a leading-dot float like ".5"
        // (we do not support the latter; always a rule terminator).
        tok.kind = TokenKind::kDot;
        Advance();
      } else if (c == ':') {
        Advance();
        if (AtEnd() || Peek() != '-') {
          return Err(tok, "expected '-' after ':'");
        }
        Advance();
        tok.kind = TokenKind::kImplies;
      } else if (c == '-') {
        tok.kind = TokenKind::kMinus;
        Advance();
      } else if (c == '"') {
        GDLOG_RETURN_IF_ERROR_RES(LexString(&tok));
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        GDLOG_RETURN_IF_ERROR_RES(LexNumber(&tok));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        LexIdent(&tok);
      } else {
        return Err(tok, std::string("unexpected character '") + c + "'");
      }
      tokens.push_back(std::move(tok));
    }
    Token eof;
    eof.kind = TokenKind::kEof;
    eof.line = line_;
    eof.column = column_;
    tokens.push_back(eof);
    return tokens;
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek() const { return src_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }

  void Advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
      if (!AtEnd() && Peek() == '%') {
        while (!AtEnd() && Peek() != '\n') Advance();
        continue;
      }
      break;
    }
  }

  Status Err(const Token& tok, const std::string& msg) {
    return Status::ParseError("line " + std::to_string(tok.line) + ":" +
                              std::to_string(tok.column) + ": " + msg);
  }

  Status LexString(Token* tok) {
    tok->kind = TokenKind::kString;
    Advance();  // opening quote
    std::string text;
    while (!AtEnd() && Peek() != '"') {
      if (Peek() == '\\') {
        Advance();
        if (AtEnd()) break;
        char e = Peek();
        switch (e) {
          case 'n': text += '\n'; break;
          case 't': text += '\t'; break;
          case '\\': text += '\\'; break;
          case '"': text += '"'; break;
          default: text += e; break;
        }
        Advance();
      } else {
        text += Peek();
        Advance();
      }
    }
    if (AtEnd()) return Err(*tok, "unterminated string literal");
    Advance();  // closing quote
    tok->text = std::move(text);
    return Status::OK();
  }

  Status LexNumber(Token* tok) {
    size_t start = pos_;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
    bool is_double = false;
    // A '.' is part of the number only when followed by a digit; otherwise
    // it terminates the rule.
    if (!AtEnd() && Peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(PeekAt(1)))) {
      is_double = true;
      Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      size_t save_pos = pos_;
      int save_line = line_, save_col = column_;
      Advance();
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) Advance();
      if (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        is_double = true;
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          Advance();
        }
      } else {
        pos_ = save_pos;
        line_ = save_line;
        column_ = save_col;
      }
    }
    std::string text(src_.substr(start, pos_ - start));
    tok->text = text;
    if (is_double) {
      tok->kind = TokenKind::kDouble;
      tok->double_value = std::strtod(text.c_str(), nullptr);
    } else {
      tok->kind = TokenKind::kInt;
      tok->int_value = std::strtoll(text.c_str(), nullptr, 10);
    }
    return Status::OK();
  }

  void LexIdent(Token* tok) {
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      Advance();
    }
    std::string text(src_.substr(start, pos_ - start));
    if (text == "not") {
      tok->kind = TokenKind::kNot;
    } else if (text == "true") {
      tok->kind = TokenKind::kTrue;
    } else if (text == "false") {
      tok->kind = TokenKind::kFalse;
    } else if (text[0] == '_' || std::isupper(static_cast<unsigned char>(text[0]))) {
      tok->kind = TokenKind::kVariable;
    } else {
      tok->kind = TokenKind::kIdent;
    }
    tok->text = std::move(text);
  }

#undef GDLOG_RETURN_IF_ERROR_RES

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  return LexerImpl(source).Run();
}

}  // namespace gdlog
