#ifndef GDLOG_AST_PARSER_H_
#define GDLOG_AST_PARSER_H_

#include <memory>
#include <string_view>

#include "ast/program.h"
#include "util/status.h"

namespace gdlog {

/// Parses gdlog surface syntax into a Program. Grammar (EBNF-ish):
///
///   program     ::= { rule | constraint }
///   rule        ::= head_atom [ ":-" body ] "."
///   constraint  ::= ":-" body "."
///   body        ::= literal { "," literal }
///   literal     ::= [ "not" ] atom
///   atom        ::= ident [ "(" term { "," term } ")" ]
///   head_atom   ::= ident [ "(" head_arg { "," head_arg } ")" ]
///   head_arg    ::= term | delta_term
///   delta_term  ::= ident "<" term { "," term } ">" [ "[" term { "," term } "]" ]
///   term        ::= variable | constant
///   constant    ::= integer | float | string | "true" | "false" | ident
///
/// Lowercase identifiers in term position are symbolic constants; `true` and
/// `false` are boolean constants; "%": line comment.
///
/// If `interner` is null a fresh one is created.
Result<Program> ParseProgram(std::string_view source,
                             std::shared_ptr<Interner> interner = nullptr);

}  // namespace gdlog

#endif  // GDLOG_AST_PARSER_H_
