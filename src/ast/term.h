#ifndef GDLOG_AST_TERM_H_
#define GDLOG_AST_TERM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/value.h"

namespace gdlog {

class Interner;

/// An ordinary term: a constant of C or a variable of V (§2 of the paper).
/// Variables are interned names; matching layers remap them to dense
/// per-rule slots.
class Term {
 public:
  enum class Kind : uint8_t { kConstant, kVariable };

  Term() : kind_(Kind::kConstant), constant_(Value::Int(0)) {}

  static Term Constant(Value v) {
    Term t;
    t.kind_ = Kind::kConstant;
    t.constant_ = v;
    return t;
  }
  static Term Variable(uint32_t var_id) {
    Term t;
    t.kind_ = Kind::kVariable;
    t.var_id_ = var_id;
    return t;
  }

  Kind kind() const { return kind_; }
  bool is_constant() const { return kind_ == Kind::kConstant; }
  bool is_variable() const { return kind_ == Kind::kVariable; }

  const Value& constant() const { return constant_; }
  uint32_t var_id() const { return var_id_; }

  bool operator==(const Term& other) const {
    if (kind_ != other.kind_) return false;
    if (kind_ == Kind::kConstant) return constant_ == other.constant_;
    return var_id_ == other.var_id_;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }

  std::string ToString(const Interner* interner = nullptr) const;

 private:
  Kind kind_;
  Value constant_;
  uint32_t var_id_ = 0;
};

/// A Δ-term δ⟨p̄⟩[q̄] (§3): a sample from the parameterized distribution δ
/// instantiated with parameters p̄; distinct event signatures q̄ yield
/// independent samples. Only legal in rule heads.
struct DeltaTerm {
  /// Interned distribution name (e.g. "flip").
  uint32_t dist_id = 0;
  /// Distribution parameters p̄ (non-empty tuple of terms).
  std::vector<Term> params;
  /// Optional event signature q̄ (possibly empty tuple of terms).
  std::vector<Term> events;

  bool operator==(const DeltaTerm& other) const {
    return dist_id == other.dist_id && params == other.params &&
           events == other.events;
  }

  std::string ToString(const Interner* interner = nullptr) const;
};

/// A head argument: an ordinary term or a Δ-term (a Δ-atom position, §3).
class HeadArg {
 public:
  HeadArg() : is_delta_(false) {}
  /*implicit*/ HeadArg(Term t) : is_delta_(false), term_(t) {}
  /*implicit*/ HeadArg(DeltaTerm d) : is_delta_(true), delta_(std::move(d)) {}

  bool is_delta() const { return is_delta_; }
  const Term& term() const { return term_; }
  const DeltaTerm& delta() const { return delta_; }

  bool operator==(const HeadArg& other) const {
    if (is_delta_ != other.is_delta_) return false;
    return is_delta_ ? delta_ == other.delta_ : term_ == other.term_;
  }

  std::string ToString(const Interner* interner = nullptr) const;

 private:
  bool is_delta_;
  Term term_;
  DeltaTerm delta_;
};

}  // namespace gdlog

#endif  // GDLOG_AST_TERM_H_
