#ifndef GDLOG_AST_PROGRAM_H_
#define GDLOG_AST_PROGRAM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ast/rule.h"
#include "util/interner.h"
#include "util/status.h"

namespace gdlog {

/// A GDatalog¬[Δ] program Π: a finite set of rules over a schema, plus the
/// interners that give names to predicates, variables, symbolic constants
/// and distributions. Plain Datalog¬ programs are the special case where no
/// rule head mentions a Δ-term.
class Program {
 public:
  Program() : interner_(std::make_shared<Interner>()) {}
  explicit Program(std::shared_ptr<Interner> interner)
      : interner_(std::move(interner)) {}

  /// The shared name table. Distribution, predicate, variable and symbol
  /// names all live here (ids are only meaningful per syntactic position).
  Interner* interner() { return interner_.get(); }
  const Interner* interner() const { return interner_.get(); }
  std::shared_ptr<Interner> shared_interner() const { return interner_; }

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }
  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>& mutable_rules() { return rules_; }

  /// Validates the program:
  ///  * consistent arity per predicate,
  ///  * safety: every variable of a negative literal, and every variable of
  ///    the head (including those inside Δ-term parameters and event
  ///    signatures), occurs in a positive body atom,
  ///  * constraints have no head.
  Status Validate() const;

  /// Predicates appearing anywhere in the program (sch(Π)).
  std::set<uint32_t> Predicates() const;

  /// Intensional predicates: those appearing in some rule head (idb(Π)).
  std::set<uint32_t> IntensionalPredicates() const;

  /// Extensional predicates: sch(Π) minus idb(Π) (edb(Π)).
  std::set<uint32_t> ExtensionalPredicates() const;

  /// Arity of each predicate (validated to be consistent).
  std::map<uint32_t, size_t> Arities() const;

  /// True iff no rule uses negation.
  bool IsPositive() const;

  /// True iff no rule head mentions a Δ-term (plain Datalog¬).
  bool IsPlain() const;

  /// Rewrites each constraint "body → ⊥" into the paper's Fail/Aux encoding:
  ///   body → Fail            and (once)   Fail, ¬Aux → Aux,
  /// with fresh 0-ary predicates. Returns the name ids used (fail, aux).
  /// Idempotent: programs without constraints are returned unchanged.
  std::pair<uint32_t, uint32_t> DesugarConstraints();

  /// True iff the Fail/Aux pair was introduced by DesugarConstraints.
  bool has_fail() const { return has_fail_; }
  uint32_t fail_predicate() const { return fail_predicate_; }

  /// Structural copy whose name table is `interner` instead of this
  /// program's. Only meaningful when `interner` preserves this program's
  /// ids (see Interner::Clone) — the rules are copied verbatim.
  Program CloneWith(std::shared_ptr<Interner> interner) const {
    Program copy(std::move(interner));
    copy.rules_ = rules_;
    copy.has_fail_ = has_fail_;
    copy.fail_predicate_ = fail_predicate_;
    return copy;
  }

  std::string ToString() const;

 private:
  std::shared_ptr<Interner> interner_;
  std::vector<Rule> rules_;
  bool has_fail_ = false;
  uint32_t fail_predicate_ = 0;
};

}  // namespace gdlog

#endif  // GDLOG_AST_PROGRAM_H_
