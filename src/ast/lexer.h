#ifndef GDLOG_AST_LEXER_H_
#define GDLOG_AST_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gdlog {

/// Token kinds of the gdlog surface syntax.
enum class TokenKind : uint8_t {
  kIdent,      ///< lowercase-initial identifier: predicate/symbol/distribution
  kVariable,   ///< uppercase- or underscore-initial identifier
  kInt,        ///< integer literal
  kDouble,     ///< floating literal (contains '.' or exponent)
  kString,     ///< double-quoted string
  kLParen,     ///< (
  kRParen,     ///< )
  kLBracket,   ///< [
  kRBracket,   ///< ]
  kLAngle,     ///< <
  kRAngle,     ///< >
  kComma,      ///< ,
  kDot,        ///< .
  kImplies,    ///< :-
  kNot,        ///< keyword `not`
  kTrue,       ///< keyword `true`
  kFalse,      ///< keyword `false`
  kMinus,      ///< -
  kEof,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;     ///< Identifier / literal text (unquoted for strings).
  int64_t int_value = 0;
  double double_value = 0.0;
  int line = 1;
  int column = 1;
};

/// Tokenizes gdlog program text. `%` starts a line comment.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace gdlog

#endif  // GDLOG_AST_LEXER_H_
