#ifndef GDLOG_AST_RULE_H_
#define GDLOG_AST_RULE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ast/atom.h"

namespace gdlog {

/// A GDatalog¬[Δ] rule (§3):
///
///   R1(ū1), ..., Rn(ūn), ¬P1(v̄1), ..., ¬Pm(v̄m) → R0(w̄)
///
/// where w̄ may mention Δ-terms. A rule with `is_constraint == true` has no
/// head and denotes the ⊥-rule "body → ⊥"; the paper treats ⊥ as syntactic
/// sugar for the Fail/Aux encoding, which `Program::DesugarConstraints`
/// makes explicit.
struct Rule {
  HeadAtom head;
  std::vector<Literal> body;
  bool is_constraint = false;

  /// Positive body literals B+(ρ).
  std::vector<const Atom*> PositiveBody() const {
    std::vector<const Atom*> out;
    for (const Literal& l : body) {
      if (!l.negated) out.push_back(&l.atom);
    }
    return out;
  }

  /// Atoms of negative body literals B-(ρ).
  std::vector<const Atom*> NegativeBody() const {
    std::vector<const Atom*> out;
    for (const Literal& l : body) {
      if (l.negated) out.push_back(&l.atom);
    }
    return out;
  }

  /// True iff the body is empty and the head is ground and plain — i.e. the
  /// rule is a fact.
  bool IsFact() const;

  /// True iff the head mentions no Δ-term (constraints count as plain).
  bool IsPlain() const { return is_constraint || head.IsPlain(); }

  bool operator==(const Rule& other) const {
    return is_constraint == other.is_constraint && head == other.head &&
           body == other.body;
  }

  std::string ToString(const Interner* interner = nullptr) const;
};

/// Dense per-rule variable numbering: every interned variable id occurring
/// in a rule is assigned a slot in 0..count()-1, in first-occurrence order
/// over the positive body (body order, columns left to right), then the
/// negative body, then the head (including Δ-term parameters and event
/// signatures). For safe rules every negative-body and head variable is
/// already numbered by the positive body. The matching layers use slots to
/// keep bindings in flat arrays instead of per-variable hash maps.
struct RuleSlots {
  /// Interned variable id → dense slot.
  std::unordered_map<uint32_t, uint16_t> slot_of;

  size_t count() const { return slot_of.size(); }

  /// Slot of `var_id`; the variable must occur in the rule.
  uint16_t SlotOf(uint32_t var_id) const { return slot_of.at(var_id); }
};

/// Numbers the variables of `rule` (see RuleSlots). Asserts the rule has
/// at most 65536 distinct variables (slots are 16-bit).
RuleSlots NumberRuleSlots(const Rule& rule);

}  // namespace gdlog

#endif  // GDLOG_AST_RULE_H_
