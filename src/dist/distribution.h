#ifndef GDLOG_DIST_DISTRIBUTION_H_
#define GDLOG_DIST_DISTRIBUTION_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/prob.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/value.h"

namespace gdlog {

/// One parametric distribution δ of the distribution set Δ (§2). Following
/// the paper, δ⟨p̄⟩ must be a *total* function from parameter tuples to
/// discrete probability distributions: for out-of-range parameters the
/// implementations concentrate all mass on a designated fallback outcome
/// (mirroring the Appendix-B Die, which maps invalid p̄ to the outcome 0)
/// rather than failing.
///
/// Probabilities are exact `Prob` rationals whenever the parameters came
/// from decimal program text (0.1 ↦ 1/10), so tests and experiment output
/// can assert masses like 19/100 exactly.
///
/// Thread-safety: every const member function must be safe to call
/// concurrently from any number of threads — the parallel chase evaluates
/// Pmf/Support/HasFiniteSupport on the shared registry singletons from all
/// workers at once. Implementations that memoize parsed parameter tables
/// do so through an internally synchronized immutable cache; they carry no
/// externally visible mutable state.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// The name used in Δ-terms (e.g. "flip" in flip<0.1>[X]).
  virtual std::string_view name() const = 0;

  /// True iff the distribution accepts parameter tuples of this dimension.
  virtual bool AcceptsDim(size_t dim) const = 0;

  /// The probability mass δ⟨params⟩(outcome). Zero off-support; never
  /// fails — invalid parameters degenerate as described above.
  virtual Prob Pmf(const std::vector<Value>& params,
                   const Value& outcome) const = 0;

  /// True iff δ⟨params⟩ has finite support (possibly because the
  /// parameters are degenerate, e.g. geometric with p = 1). Finite
  /// supports too large to enumerate (beyond an internal cap) report
  /// false so the chase truncates them with residual-mass accounting
  /// instead of materializing them.
  virtual bool HasFiniteSupport(const std::vector<Value>& params) const = 0;

  /// The support of δ⟨params⟩ in canonical order. Every returned outcome
  /// has strictly positive mass. For infinite (or enumeration-capped)
  /// supports, returns a window of at most `limit` outcomes positioned to
  /// capture maximal mass — a prefix for monotone distributions, a
  /// mode-centered window otherwise; the chase accounts the rest as
  /// residual mass. For finite supports `limit` is advisory and 0 means
  /// "no limit".
  virtual std::vector<Value> Support(const std::vector<Value>& params,
                                     size_t limit) const = 0;

  /// Draws one outcome according to δ⟨params⟩.
  virtual Value Sample(const std::vector<Value>& params, Rng* rng) const = 0;
};

/// The distribution set Δ: an owning name → Distribution map. Movable,
/// not copyable (registered distributions are owned singletons).
class DistributionRegistry {
 public:
  DistributionRegistry() = default;
  DistributionRegistry(DistributionRegistry&&) = default;
  DistributionRegistry& operator=(DistributionRegistry&&) = default;

  /// The builtin Δ: flip, die, discrete, uniformint, binomial, geometric,
  /// poisson.
  static DistributionRegistry Builtins();

  /// Registers `dist` under dist->name(); kAlreadyExists on duplicates.
  Status Register(std::unique_ptr<Distribution> dist);

  /// The distribution registered under `name`, or nullptr.
  const Distribution* Lookup(std::string_view name) const;

 private:
  std::map<std::string, std::unique_ptr<Distribution>, std::less<>> by_name_;
};

/// Knobs for the extension distributions.
struct ExtensionOptions {
  /// Half-width cap K on normalgrid's enumeration grid: the grid spans
  /// k ∈ [-K, K] around μ, so at most 2K+1 cells are materialized no
  /// matter how small the step is relative to σ (renormalization keeps the
  /// distribution total). Larger caps buy finer grids at the price of
  /// enumeration and per-parameter-table memory. Valid range [1, 2^20].
  int64_t normalgrid_max_half_cells = 4096;
};

/// Adds the extension distributions to `registry`: "normalgrid" (a
/// discretized Gaussian over the grid μ + kΔx whose cell masses
/// renormalize to 1) and "zipf" (Zipf over ranks 1..N with exponent s).
/// Fails with kInvalidArgument when an option is out of range.
Status RegisterExtensionDistributions(DistributionRegistry* registry,
                                      const ExtensionOptions& options =
                                          ExtensionOptions{});

}  // namespace gdlog

#endif  // GDLOG_DIST_DISTRIBUTION_H_
