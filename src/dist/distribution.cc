#include "dist/distribution.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>

namespace gdlog {
namespace {

// ---------------------------------------------------------------------------
// Parameter plumbing. Parameters arrive as ground Values; decimal program
// text becomes exact rationals (0.1 ↦ 1/10) so pmfs stay exact whenever the
// arithmetic allows.
// ---------------------------------------------------------------------------

/// Finite supports larger than this are reported as infinite so the chase
/// truncates them under its support limit (with residual-mass accounting)
/// instead of materializing billions of outcomes.
constexpr uint64_t kMaxEnumerable = uint64_t{1} << 20;

/// Above this size, exact-rational loops (powers, factorial products,
/// harmonic sums) cut over to closed-form double arithmetic: the rationals
/// would long since have gone inexact, and the loops would otherwise scale
/// with program-supplied parameters.
constexpr int64_t kExactCutover = 4096;

bool IsFiniteNumeric(const Value& v) {
  if (!v.is_numeric()) return false;
  if (v.is_double()) return std::isfinite(v.double_value());
  return true;
}

Rational ParamRational(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kBool:
      return Rational(v.bool_value() ? 1 : 0, 1);
    case Value::Kind::kInt:
      return Rational(v.int_value(), 1);
    case Value::Kind::kDouble:
      return Rational::FromDecimal(v.double_value());
    case Value::Kind::kSymbol:
      // Symbols must never masquerade as numbers: an intern id is
      // interning-order dependent. Callers gate on IsFiniteNumeric.
      return Rational::Zero();
  }
  return Rational::Zero();
}

/// r ∈ [0, 1] and not NaN.
bool IsValidProbability(const Rational& r) {
  if (std::isnan(r.ToDouble())) return false;
  return !(r < Rational::Zero()) && !(Rational::One() < r);
}

/// Exact a/b when both operands are exact; decimal-snapped double quotient
/// otherwise (FromDecimal keeps quotients like 2/8 exact and marks the rest
/// inexact while preserving the double value).
Rational RationalDiv(const Rational& a, const Rational& b) {
  if (a.exact() && b.exact() && b.numerator() != 0) {
    return a * Rational(b.denominator(), b.numerator());
  }
  return Rational::FromDecimal(a.ToDouble() / b.ToDouble());
}

/// True iff `v` is an integer-kinded value equal to `i`.
bool IsInt(const Value& v, int64_t i) {
  return v.is_int() && v.int_value() == i;
}

/// Extracts an integer parameter; integral doubles are accepted (surface
/// syntax may render counts either way). Returns false for non-integers.
bool IntParam(const Value& v, int64_t* out) {
  if (v.is_int() || v.is_bool()) {
    *out = v.int_value();
    return true;
  }
  if (v.is_double() && std::isfinite(v.double_value()) &&
      std::nearbyint(v.double_value()) == v.double_value() &&
      std::fabs(v.double_value()) < 9.2e18) {
    *out = static_cast<int64_t>(v.double_value());
    return true;
  }
  return false;
}

/// Immutable, hash-indexed parameter-table cache. The chase re-evaluates
/// the same parameter tuple once per support outcome, so parsing or
/// renormalizing on every Pmf call would make enumeration quadratic — and
/// the parallel chase calls Pmf from many threads at once, so the cache
/// must be safe for concurrent readers.
///
/// The whole table lives behind one atomically swapped shared_ptr snapshot:
/// readers atomically load the current snapshot and look their tuple up in
/// it without taking a lock; a miss parses off to the side and publishes a
/// copy-on-write successor snapshot with a compare-exchange (losing the
/// race just means someone else's snapshot won — the entry for our tuple is
/// still found or re-added on retry). Entries are shared_ptr<const T>, so a
/// reader's table survives any concurrent eviction. Invalid parameter
/// tuples cache a nullptr entry (negative caching).
///
/// The size is bounded: at kMaxEntries the successor snapshot starts over
/// from just the new entry, so a workload alternating between many tuples
/// can neither grow the table without bound nor thrash a hot entry out one
/// insert at a time.
template <typename T>
class ParamTableCache {
 public:
  static constexpr size_t kMaxEntries = 64;

  /// The parsed value for `params`, or nullptr when `parse` rejects them.
  /// `parse` is bool(const std::vector<Value>&, T*).
  template <typename ParseFn>
  std::shared_ptr<const T> Get(const std::vector<Value>& params,
                               ParseFn parse) const {
    std::shared_ptr<const Map> snapshot = std::atomic_load(&snapshot_);
    if (snapshot != nullptr) {
      auto it = snapshot->find(params);
      if (it != snapshot->end()) return it->second;
    }
    auto parsed = std::make_shared<T>();
    std::shared_ptr<const T> value;
    if (parse(params, parsed.get())) value = std::move(parsed);
    for (;;) {
      auto next = std::make_shared<Map>();
      if (snapshot != nullptr && snapshot->size() < kMaxEntries) {
        *next = *snapshot;
      }
      (*next)[params] = value;
      if (std::atomic_compare_exchange_weak(
              &snapshot_, &snapshot,
              std::shared_ptr<const Map>(std::move(next)))) {
        return value;
      }
      // Lost the race; `snapshot` now holds the winner. Reuse its entry if
      // it already covers our tuple.
      if (snapshot != nullptr) {
        auto it = snapshot->find(params);
        if (it != snapshot->end()) return it->second;
      }
    }
  }

 private:
  using Map =
      std::unordered_map<Tuple, std::shared_ptr<const T>, TupleHash>;
  mutable std::shared_ptr<const Map> snapshot_;
};

/// Inverse-CDF draw over parallel outcome/mass vectors (masses sum to ~1).
Value SampleByMasses(const std::vector<Value>& outcomes,
                     const std::vector<double>& masses, Rng* rng) {
  double u = rng->NextDouble();
  double cum = 0.0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    cum += masses[i];
    if (u < cum) return outcomes[i];
  }
  return outcomes.back();
}

/// Poisson(λ) draw via Knuth's product method — O(λ) RNG draws, so
/// callers keep λ small (≲ a few hundred; e^{-λ} must not underflow).
int64_t PoissonKnuth(double lambda, Rng* rng) {
  const double limit = std::exp(-lambda);
  int64_t k = 0;
  double prod = rng->NextDouble();
  while (prod > limit) {
    ++k;
    prod *= rng->NextDouble();
  }
  return k;
}

/// One standard-normal draw (Box–Muller).
double NormalDraw(Rng* rng) {
  double u1 = 1.0 - rng->NextDouble();  // (0, 1]
  double u2 = rng->NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

/// First outcome of a `cap`-wide truncation window for a unimodal mass
/// function whose mode (at a numerically positive mass) is known: bisects
/// past the underflowed left flank, then centers the window on the mode so
/// the enumerated outcomes carry maximal mass (a 0-based prefix would
/// capture ~nothing when the mode is far right); the chase accounts the
/// remainder as residual.
template <typename PositiveAt>
int64_t UnimodalWindowStart(int64_t mode, size_t cap,
                            PositiveAt positive_at) {
  int64_t first = 0;
  if (!positive_at(int64_t{0})) {
    int64_t lo = 0, hi = mode;
    while (lo + 1 < hi) {
      int64_t mid = lo + (hi - lo) / 2;
      if (positive_at(mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    first = hi;
  }
  return std::max(first, mode - static_cast<int64_t>(cap) / 2);
}

// ---------------------------------------------------------------------------
// flip — Bernoulli over {0, 1}; flip<p>(1) = p. Invalid p degenerates on 0.
// ---------------------------------------------------------------------------

class FlipDist : public Distribution {
 public:
  std::string_view name() const override { return "flip"; }
  bool AcceptsDim(size_t dim) const override { return dim == 1; }

  Prob Pmf(const std::vector<Value>& params,
           const Value& outcome) const override {
    Rational p;
    if (!Param(params, &p)) {
      return IsInt(outcome, 0) ? Prob::One() : Prob::Zero();
    }
    if (IsInt(outcome, 1)) return Prob(p);
    if (IsInt(outcome, 0)) return Prob(Rational::One() - p);
    return Prob::Zero();
  }

  bool HasFiniteSupport(const std::vector<Value>&) const override {
    return true;
  }

  std::vector<Value> Support(const std::vector<Value>& params,
                             size_t) const override {
    Rational p;
    if (!Param(params, &p)) return {Value::Int(0)};
    std::vector<Value> support;
    if (Rational::Zero() < Rational::One() - p) support.push_back(Value::Int(0));
    if (Rational::Zero() < p) support.push_back(Value::Int(1));
    return support;
  }

  Value Sample(const std::vector<Value>& params, Rng* rng) const override {
    Rational p;
    if (!Param(params, &p)) return Value::Int(0);
    return Value::Int(rng->NextDouble() < p.ToDouble() ? 1 : 0);
  }

 private:
  static bool Param(const std::vector<Value>& params, Rational* p) {
    if (params.size() != 1 || !IsFiniteNumeric(params[0])) return false;
    *p = ParamRational(params[0]);
    return IsValidProbability(*p);
  }
};

// ---------------------------------------------------------------------------
// die — the Appendix-B Die⟨p̄⟩ over faces 1..n. When Σpᵢ ≠ 1 (or any pᵢ is
// out of range) all mass concentrates on the fallback outcome 0.
// ---------------------------------------------------------------------------

class DieDist : public Distribution {
 public:
  std::string_view name() const override { return "die"; }
  bool AcceptsDim(size_t dim) const override { return dim >= 1; }

  Prob Pmf(const std::vector<Value>& params,
           const Value& outcome) const override {
    std::shared_ptr<const FaceTable> table = Faces(params);
    if (table == nullptr) {
      return IsInt(outcome, 0) ? Prob::One() : Prob::Zero();
    }
    if (!outcome.is_int()) return Prob::Zero();
    int64_t face = outcome.int_value();
    if (face < 1 || face > static_cast<int64_t>(table->masses.size())) {
      return Prob::Zero();
    }
    return Prob(table->masses[face - 1]);
  }

  bool HasFiniteSupport(const std::vector<Value>&) const override {
    return true;
  }

  std::vector<Value> Support(const std::vector<Value>& params,
                             size_t) const override {
    std::shared_ptr<const FaceTable> table = Faces(params);
    if (table == nullptr) return {Value::Int(0)};
    return table->outcomes;
  }

  Value Sample(const std::vector<Value>& params, Rng* rng) const override {
    std::shared_ptr<const FaceTable> table = Faces(params);
    if (table == nullptr) return Value::Int(0);
    return SampleByMasses(table->outcomes, table->weights, rng);
  }

 private:
  struct FaceTable {
    std::vector<Rational> masses;   ///< per face 1..n, including zeros
    std::vector<Value> outcomes;    ///< positive-mass faces only
    std::vector<double> weights;    ///< their masses as doubles
  };

  /// Validated face table, or nullptr on invalid parameters.
  std::shared_ptr<const FaceTable> Faces(
      const std::vector<Value>& params) const {
    return cache_.Get(params, ParseFaces);
  }

  static bool ParseFaces(const std::vector<Value>& params,
                         FaceTable* table) {
    if (params.empty()) return false;
    table->masses.clear();
    table->outcomes.clear();
    table->weights.clear();
    Rational total = Rational::Zero();
    bool all_exact = true;
    for (const Value& v : params) {
      if (!IsFiniteNumeric(v)) return false;
      Rational p = ParamRational(v);
      if (!IsValidProbability(p)) return false;
      all_exact = all_exact && p.exact();
      total = total + p;
      table->masses.push_back(p);
    }
    bool valid = (all_exact && total.exact())
                     ? total == Rational::One()
                     : std::fabs(total.ToDouble() - 1.0) < 1e-9;
    if (!valid) return false;
    for (size_t i = 0; i < table->masses.size(); ++i) {
      if (Rational::Zero() < table->masses[i]) {
        table->outcomes.push_back(Value::Int(static_cast<int64_t>(i) + 1));
        table->weights.push_back(table->masses[i].ToDouble());
      }
    }
    return true;
  }

  ParamTableCache<FaceTable> cache_;
};

// ---------------------------------------------------------------------------
// discrete — explicit (outcome, mass) pairs; masses renormalize, repeated
// outcomes accumulate. Invalid parameters degenerate on 0.
// ---------------------------------------------------------------------------

class DiscreteDist : public Distribution {
 public:
  std::string_view name() const override { return "discrete"; }
  bool AcceptsDim(size_t dim) const override {
    return dim >= 2 && dim % 2 == 0;
  }

  Prob Pmf(const std::vector<Value>& params,
           const Value& outcome) const override {
    std::shared_ptr<const Entries> table = Table(params);
    if (table == nullptr) {
      return IsInt(outcome, 0) ? Prob::One() : Prob::Zero();
    }
    auto it = table->index.find(outcome);
    if (it == table->index.end()) return Prob::Zero();
    return Prob(table->masses[it->second]);
  }

  bool HasFiniteSupport(const std::vector<Value>&) const override {
    return true;
  }

  std::vector<Value> Support(const std::vector<Value>& params,
                             size_t) const override {
    std::shared_ptr<const Entries> table = Table(params);
    if (table == nullptr) return {Value::Int(0)};
    return table->outcomes;
  }

  Value Sample(const std::vector<Value>& params, Rng* rng) const override {
    std::shared_ptr<const Entries> table = Table(params);
    if (table == nullptr) return Value::Int(0);
    return SampleByMasses(table->outcomes, table->weights, rng);
  }

 private:
  struct Entries {
    std::vector<Value> outcomes;
    std::vector<Rational> masses;
    std::vector<double> weights;  ///< masses as doubles, for sampling
    /// outcome → position in the parallel vectors; makes Pmf O(1) instead
    /// of a linear scan over the support.
    std::unordered_map<Value, size_t> index;
  };

  /// Normalized table of distinct positive-mass outcomes, or nullptr on
  /// malformed parameters.
  std::shared_ptr<const Entries> Table(
      const std::vector<Value>& params) const {
    return cache_.Get(params, ParseTable);
  }

  /// Builds the normalized table of distinct positive-mass outcomes in
  /// first-occurrence order. False on malformed parameters.
  static bool ParseTable(const std::vector<Value>& params, Entries* table) {
    std::vector<Value>* outcomes = &table->outcomes;
    std::vector<Rational>* masses = &table->masses;
    if (params.size() < 2 || params.size() % 2 != 0) return false;
    outcomes->clear();
    masses->clear();
    table->index.clear();
    Rational total = Rational::Zero();
    for (size_t i = 0; i + 1 < params.size(); i += 2) {
      const Value& outcome = params[i];
      const Value& mass_value = params[i + 1];
      if (!IsFiniteNumeric(mass_value)) return false;
      Rational mass = ParamRational(mass_value);
      if (std::isnan(mass.ToDouble()) || mass < Rational::Zero()) return false;
      total = total + mass;
      auto [it, inserted] = table->index.emplace(outcome, outcomes->size());
      if (inserted) {
        outcomes->push_back(outcome);
        masses->push_back(mass);
      } else {
        (*masses)[it->second] = (*masses)[it->second] + mass;
      }
    }
    if (!(Rational::Zero() < total)) return false;
    table->index.clear();
    size_t kept = 0;
    for (size_t i = 0; i < outcomes->size(); ++i) {
      if (!(Rational::Zero() < (*masses)[i])) continue;
      (*outcomes)[kept] = (*outcomes)[i];
      (*masses)[kept] = RationalDiv((*masses)[i], total);
      table->index.emplace((*outcomes)[kept], kept);
      ++kept;
    }
    outcomes->resize(kept);
    masses->resize(kept);
    table->weights.clear();
    table->weights.reserve(kept);
    for (const Rational& m : *masses) table->weights.push_back(m.ToDouble());
    return true;
  }

  ParamTableCache<Entries> cache_;
};

// ---------------------------------------------------------------------------
// uniformint — uniform over the integer range [lo, hi]. An empty range
// (lo > hi) degenerates at lo, keeping δ total.
// ---------------------------------------------------------------------------

class UniformIntDist : public Distribution {
 public:
  std::string_view name() const override { return "uniformint"; }
  bool AcceptsDim(size_t dim) const override { return dim == 2; }

  bool HasFiniteSupport(const std::vector<Value>& params) const override {
    int64_t lo, hi;
    if (!Range(params, &lo, &hi) || hi < lo) return true;
    uint64_t n = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    return n != 0 && n <= kMaxEnumerable;
  }

  Prob Pmf(const std::vector<Value>& params,
           const Value& outcome) const override {
    int64_t lo, hi;
    if (!Range(params, &lo, &hi)) {
      return IsInt(outcome, 0) ? Prob::One() : Prob::Zero();
    }
    if (hi < lo) return IsInt(outcome, lo) ? Prob::One() : Prob::Zero();
    if (!outcome.is_int() || outcome.int_value() < lo ||
        outcome.int_value() > hi) {
      return Prob::Zero();
    }
    // Width in uint64 so ranges wider than int64 stay defined; n == 0
    // encodes the full 2^64-wide range.
    uint64_t n = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    if (n != 0 && n <= static_cast<uint64_t>(INT64_MAX)) {
      return Prob(Rational(1, static_cast<int64_t>(n)));
    }
    return Prob::FromDouble(n == 0 ? 0x1p-64 : 1.0 / static_cast<double>(n));
  }

  std::vector<Value> Support(const std::vector<Value>& params,
                             size_t limit) const override {
    int64_t lo, hi;
    if (!Range(params, &lo, &hi)) return {Value::Int(0)};
    if (hi < lo) return {Value::Int(lo)};
    size_t cap = limit > 0 ? limit : static_cast<size_t>(kMaxEnumerable);
    std::vector<Value> support;
    for (int64_t v = lo;; ++v) {
      if (support.size() >= cap) break;
      support.push_back(Value::Int(v));
      if (v == hi) break;  // avoid ++v overflow at INT64_MAX
    }
    return support;
  }

  Value Sample(const std::vector<Value>& params, Rng* rng) const override {
    int64_t lo, hi;
    if (!Range(params, &lo, &hi)) return Value::Int(0);
    if (hi < lo) return Value::Int(lo);
    uint64_t width = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
    uint64_t draw =
        width == UINT64_MAX ? rng->Next() : rng->NextBounded(width + 1);
    return Value::Int(
        static_cast<int64_t>(static_cast<uint64_t>(lo) + draw));
  }

 private:
  static bool Range(const std::vector<Value>& params, int64_t* lo,
                    int64_t* hi) {
    return params.size() == 2 && IntParam(params[0], lo) &&
           IntParam(params[1], hi);
  }
};

// ---------------------------------------------------------------------------
// binomial — binomial<n, p> over 0..n with exact rational masses
// C(n,k) pᵏ (1-p)ⁿ⁻ᵏ (inexact automatically once the numerators overflow).
// ---------------------------------------------------------------------------

class BinomialDist : public Distribution {
 public:
  std::string_view name() const override { return "binomial"; }
  bool AcceptsDim(size_t dim) const override { return dim == 2; }

  Prob Pmf(const std::vector<Value>& params,
           const Value& outcome) const override {
    int64_t n;
    Rational p;
    if (!Params(params, &n, &p)) {
      return IsInt(outcome, 0) ? Prob::One() : Prob::Zero();
    }
    if (!outcome.is_int()) return Prob::Zero();
    int64_t k = outcome.int_value();
    if (k < 0 || k > n) return Prob::Zero();
    return Prob(Mass(n, k, p));
  }

  bool HasFiniteSupport(const std::vector<Value>& params) const override {
    int64_t n;
    Rational p;
    if (!Params(params, &n, &p)) return true;
    return static_cast<uint64_t>(n) < kMaxEnumerable;
  }

  std::vector<Value> Support(const std::vector<Value>& params,
                             size_t limit) const override {
    int64_t n;
    Rational p;
    if (!Params(params, &n, &p)) return {Value::Int(0)};
    // For 0 < p < 1 every k in 0..n has positive mass; the endpoints
    // degenerate. Avoids an O(n²) Mass() sweep.
    if (!(Rational::Zero() < p)) return {Value::Int(0)};
    if (p == Rational::One()) return {Value::Int(n)};
    size_t cap = limit > 0 ? limit : static_cast<size_t>(kMaxEnumerable);
    // Every k is mathematically positive for 0 < p < 1, but LogMass
    // underflows far tails to 0.0 — honor the positive-mass contract, and
    // for large n skip the underflowed left tail by bisecting to the
    // rising flank (masses are unimodal; the mode's mass ≈ 1/√(2πnpq) is
    // always positive) instead of scanning ~n/2 zero-mass ks.
    int64_t first = 0;
    if (n > kExactCutover) {
      int64_t mode =
          static_cast<int64_t>(static_cast<double>(n) * p.ToDouble());
      if (mode > n) mode = n;
      first = UnimodalWindowStart(mode, cap, [&](int64_t k) {
        return Rational::Zero() < Mass(n, k, p);
      });
    }
    std::vector<Value> support;
    for (int64_t k = first; k <= n && support.size() < cap; ++k) {
      if (Rational::Zero() < Mass(n, k, p)) {
        support.push_back(Value::Int(k));
      } else if (!support.empty()) {
        break;  // unimodal: the positive-mass region has ended
      }
    }
    return support;
  }

  Value Sample(const std::vector<Value>& params, Rng* rng) const override {
    int64_t n;
    Rational p;
    if (!Params(params, &n, &p)) return Value::Int(0);
    double prob = p.ToDouble();
    if (n > kExactCutover) {
      // Per-trial simulation would scale with the program-supplied n.
      // Pick the limit law by regime: the CLT needs np(1-p) large, so
      // skewed corners use the Poisson limit instead. Every k in [0, n]
      // has positive mass for 0 < p < 1, so clamping stays in-support.
      double mean = static_cast<double>(n) * prob;
      double qmean = static_cast<double>(n) * (1.0 - prob);
      if (mean <= 30.0) {
        int64_t k = PoissonKnuth(mean, rng);
        return Value::Int(std::min(k, n));
      }
      if (qmean <= 30.0) {
        int64_t k = n - PoissonKnuth(qmean, rng);
        return Value::Int(std::max(k, int64_t{0}));
      }
      double k = std::nearbyint(mean + std::sqrt(mean * (1.0 - prob)) *
                                           NormalDraw(rng));
      if (k < 0.0) k = 0.0;
      if (k > static_cast<double>(n)) k = static_cast<double>(n);
      return Value::Int(static_cast<int64_t>(k));
    }
    int64_t successes = 0;
    for (int64_t i = 0; i < n; ++i) {
      if (rng->NextDouble() < prob) ++successes;
    }
    return Value::Int(successes);
  }

 private:
  static bool Params(const std::vector<Value>& params, int64_t* n,
                     Rational* p) {
    if (params.size() != 2 || !IntParam(params[0], n) || *n < 0 ||
        !IsFiniteNumeric(params[1])) {
      return false;
    }
    *p = ParamRational(params[1]);
    return IsValidProbability(*p);
  }

  static Rational Mass(int64_t n, int64_t k, const Rational& p) {
    // Exact C(n,k) pᵏ qⁿ⁻ᵏ while the rationals stay exact. The instant
    // any factor goes inexact, finish in log space: a partially-multiplied
    // double coefficient like C(2048, 1024) overflows to inf, and the
    // remaining loop iterations would scale with a program-supplied n.
    // Exactness dies within ~60 factors (int64 range), so each call is
    // effectively O(1) past that point.
    if (n > kExactCutover || !p.exact()) return LogMass(n, k, p.ToDouble());
    int64_t m = std::min(k, n - k);
    Rational coeff = Rational::One();
    for (int64_t i = 1; i <= m; ++i) {
      coeff = coeff * Rational(n - m + i, i);
      if (!coeff.exact()) return LogMass(n, k, p.ToDouble());
    }
    Rational q = Rational::One() - p;
    Rational result = coeff;
    for (int64_t i = 0; i < k; ++i) {
      result = result * p;
      if (!result.exact()) return LogMass(n, k, p.ToDouble());
    }
    for (int64_t i = 0; i < n - k; ++i) {
      result = result * q;
      if (!result.exact()) return LogMass(n, k, p.ToDouble());
    }
    return result;
  }

  /// Closed-form binomial mass in log space (the PoissonDist pattern).
  static Rational LogMass(int64_t n, int64_t k, double pd) {
    if (pd <= 0.0) return k == 0 ? Rational::One() : Rational::Zero();
    if (pd >= 1.0) return k == n ? Rational::One() : Rational::Zero();
    double nd = static_cast<double>(n), kd = static_cast<double>(k);
    double logm = std::lgamma(nd + 1.0) - std::lgamma(kd + 1.0) -
                  std::lgamma(nd - kd + 1.0) + kd * std::log(pd) +
                  (nd - kd) * std::log1p(-pd);
    return Rational::FromDecimal(std::exp(logm));
  }
};

// ---------------------------------------------------------------------------
// geometric — number of failures before the first success; infinite support
// truncated to a prefix on enumeration. p = 1 degenerates at 0 (finitely).
// ---------------------------------------------------------------------------

class GeometricDist : public Distribution {
 public:
  std::string_view name() const override { return "geometric"; }
  bool AcceptsDim(size_t dim) const override { return dim == 1; }

  Prob Pmf(const std::vector<Value>& params,
           const Value& outcome) const override {
    Rational p;
    if (!Param(params, &p)) {
      return IsInt(outcome, 0) ? Prob::One() : Prob::Zero();
    }
    if (!outcome.is_int() || outcome.int_value() < 0) return Prob::Zero();
    int64_t k = outcome.int_value();
    if (p == Rational::One()) {
      return k == 0 ? Prob::One() : Prob::Zero();
    }
    Rational q = Rational::One() - p;
    if (k > kExactCutover) {
      // Exact powers would long since have gone inexact; stay in doubles.
      return Prob::FromDouble(p.ToDouble() *
                              std::pow(q.ToDouble(), static_cast<double>(k)));
    }
    Rational mass = p;
    for (int64_t i = 0; i < k; ++i) {
      mass = mass * q;
      if (!mass.exact()) {
        // Finish in doubles; the remaining factors are plain doubles now.
        return Prob::FromDouble(
            mass.ToDouble() *
            std::pow(q.ToDouble(), static_cast<double>(k - i - 1)));
      }
    }
    return Prob(mass);
  }

  bool HasFiniteSupport(const std::vector<Value>& params) const override {
    Rational p;
    if (!Param(params, &p)) return true;  // degenerate fallback
    return p == Rational::One();
  }

  std::vector<Value> Support(const std::vector<Value>& params,
                             size_t limit) const override {
    Rational p;
    if (!Param(params, &p) || p == Rational::One()) return {Value::Int(0)};
    if (limit == 0) limit = 1;
    std::vector<Value> support;
    support.reserve(limit);
    for (size_t k = 0; k < limit; ++k) {
      Value v = Value::Int(static_cast<int64_t>(k));
      // Masses decrease in k; stop once q^k underflows so every returned
      // outcome keeps positive mass (Pmf(0) = p > 0, so never empty).
      if (!(Pmf(params, v).value() > 0.0)) break;
      support.push_back(v);
    }
    return support;
  }

  Value Sample(const std::vector<Value>& params, Rng* rng) const override {
    Rational p;
    if (!Param(params, &p) || p == Rational::One()) return Value::Int(0);
    // Inversion: k = ⌊ln U / ln(1-p)⌋ with U ∈ (0, 1].
    double u = 1.0 - rng->NextDouble();
    double k = std::floor(std::log(u) / std::log1p(-p.ToDouble()));
    if (!(k >= 0)) k = 0;
    if (k > 9.2e18) k = 9.2e18;  // keep the cast defined for tiny p
    return Value::Int(static_cast<int64_t>(k));
  }

 private:
  static bool Param(const std::vector<Value>& params, Rational* p) {
    if (params.size() != 1 || !IsFiniteNumeric(params[0])) return false;
    *p = ParamRational(params[0]);
    // p = 0 is not a distribution over ℕ (zero mass everywhere).
    return IsValidProbability(*p) && Rational::Zero() < *p;
  }
};

// ---------------------------------------------------------------------------
// poisson — Poisson(λ); masses are inherently inexact (e^{-λ}). λ = 0 (and
// invalid λ) degenerate at 0.
// ---------------------------------------------------------------------------

class PoissonDist : public Distribution {
 public:
  std::string_view name() const override { return "poisson"; }
  bool AcceptsDim(size_t dim) const override { return dim == 1; }

  Prob Pmf(const std::vector<Value>& params,
           const Value& outcome) const override {
    double lambda;
    if (!Param(params, &lambda) || lambda == 0.0) {
      return IsInt(outcome, 0) ? Prob::One() : Prob::Zero();
    }
    if (!outcome.is_int() || outcome.int_value() < 0) return Prob::Zero();
    return Prob::FromDouble(PmfAt(lambda, outcome.int_value()));
  }

  bool HasFiniteSupport(const std::vector<Value>& params) const override {
    double lambda;
    return !Param(params, &lambda) || lambda == 0.0;
  }

  std::vector<Value> Support(const std::vector<Value>& params,
                             size_t limit) const override {
    double lambda;
    if (!Param(params, &lambda) || lambda == 0.0) return {Value::Int(0)};
    if (limit == 0) limit = 1;
    // Masses are unimodal in k and the mode's mass ≈ 1/√(2πλ) is always
    // positive; window the enumeration around the mode.
    int64_t mode = static_cast<int64_t>(lambda);
    int64_t first = UnimodalWindowStart(
        mode, limit, [&](int64_t k) { return PmfAt(lambda, k) > 0.0; });
    std::vector<Value> support;
    support.reserve(limit);
    for (int64_t k = first; support.size() < limit; ++k) {
      if (!(PmfAt(lambda, k) > 0.0)) break;  // right tail underflowed
      support.push_back(Value::Int(k));
    }
    if (support.empty()) support.push_back(Value::Int(mode));
    return support;
  }

  Value Sample(const std::vector<Value>& params, Rng* rng) const override {
    double lambda;
    if (!Param(params, &lambda) || lambda == 0.0) return Value::Int(0);
    if (lambda > 256.0) {
      // Normal approximation — Knuth rounds would scale with the
      // program-supplied rate (skew λ^{-1/2} < 7% past this threshold).
      double k = std::nearbyint(lambda + std::sqrt(lambda) * NormalDraw(rng));
      if (!(k >= 0.0)) k = 0.0;
      if (k > 9.2e18) k = 9.2e18;
      return Value::Int(static_cast<int64_t>(k));
    }
    // Knuth's product method, split additively so e^{-λ} cannot underflow
    // (Poisson(λ₁+λ₂) = Poisson(λ₁) + Poisson(λ₂)).
    int64_t total = 0;
    while (lambda > 30.0) {
      total += PoissonKnuth(30.0, rng);
      lambda -= 30.0;
    }
    total += PoissonKnuth(lambda, rng);
    return Value::Int(total);
  }

 private:
  static bool Param(const std::vector<Value>& params, double* lambda) {
    if (params.size() != 1 || !IsFiniteNumeric(params[0])) return false;
    *lambda = params[0].AsReal();
    // Beyond ~1e12 the log-space exponent in PmfAt (magnitude λ·lnλ)
    // loses absolute precision to double rounding and the masses turn to
    // garbage; treat such λ as invalid (degenerate at 0) like other
    // out-of-range parameters.
    return *lambda >= 0.0 && *lambda <= 1e12;
  }

  static double PmfAt(double lambda, int64_t k) {
    double kd = static_cast<double>(k);
    return std::exp(-lambda + kd * std::log(lambda) - std::lgamma(kd + 1.0));
  }
};

// ---------------------------------------------------------------------------
// normalgrid — extension: Gaussian discretized onto the grid μ + kΔx,
// k ∈ [-K, K]. Each cell's mass is the Gaussian integral over the cell,
// Φ(((k+½)Δx)/σ) − Φ(((k−½)Δx)/σ), renormalized over the truncated grid so
// the masses sum exactly (in double arithmetic) to 1. Off-grid points carry
// no mass.
// ---------------------------------------------------------------------------

class NormalGridDist : public Distribution {
 public:
  /// `max_half_cells` is the grid half-width cap K (ExtensionOptions);
  /// range-checked by RegisterExtensionDistributions.
  explicit NormalGridDist(int64_t max_half_cells)
      : max_half_cells_(max_half_cells) {}

  std::string_view name() const override { return "normalgrid"; }
  bool AcceptsDim(size_t dim) const override { return dim == 3; }

  Prob Pmf(const std::vector<Value>& params,
           const Value& outcome) const override {
    std::shared_ptr<const Grid> grid = GetGrid(params);
    if (grid == nullptr) {
      return outcome == Fallback(params) ? Prob::One() : Prob::Zero();
    }
    if (!outcome.is_double()) return Prob::Zero();
    double x = outcome.double_value();
    double t = (x - grid->mu) / grid->step;
    double k = std::nearbyint(t);
    if (std::fabs(k) > static_cast<double>(grid->half_cells)) {
      return Prob::Zero();
    }
    if (grid->mu + k * grid->step != x) return Prob::Zero();  // off-grid
    double w =
        grid->weights[static_cast<size_t>(k + grid->half_cells)];
    return Prob::FromDouble(w / grid->total);
  }

  bool HasFiniteSupport(const std::vector<Value>&) const override {
    return true;
  }

  std::vector<Value> Support(const std::vector<Value>& params,
                             size_t limit) const override {
    std::shared_ptr<const Grid> grid = GetGrid(params);
    if (grid == nullptr) return {Fallback(params)};
    std::vector<Value> support;
    for (int64_t k = -grid->half_cells; k <= grid->half_cells; ++k) {
      if (limit > 0 && support.size() >= limit) break;
      // Edge-cell weights can underflow to 0; keep the support contract.
      if (!(grid->weights[static_cast<size_t>(k + grid->half_cells)] > 0.0)) {
        continue;
      }
      support.push_back(Value::Double(grid->mu + static_cast<double>(k) *
                                                     grid->step));
    }
    return support;
  }

  Value Sample(const std::vector<Value>& params, Rng* rng) const override {
    std::shared_ptr<const Grid> grid = GetGrid(params);
    if (grid == nullptr) return Fallback(params);
    double u = rng->NextDouble() * grid->total;
    // First cell whose cumulative weight exceeds u; flat (zero-weight)
    // cells are skipped by upper_bound.
    size_t idx = static_cast<size_t>(
        std::upper_bound(grid->cum.begin(), grid->cum.end(), u) -
        grid->cum.begin());
    if (idx >= grid->cum.size() || !(grid->weights[idx] > 0.0)) {
      return Value::Double(grid->mu);  // rounding tail: the center cell
    }
    int64_t k = static_cast<int64_t>(idx) - grid->half_cells;
    return Value::Double(grid->mu + static_cast<double>(k) * grid->step);
  }

 private:
  struct Grid {
    double mu = 0.0;
    double sigma = 1.0;
    double step = 1.0;
    int64_t half_cells = 0;       ///< K: grid spans k ∈ [-K, K].
    double total = 1.0;           ///< Σ weights, the renormalization constant.
    std::vector<double> weights;  ///< cell weights, index k + K
    std::vector<double> cum;      ///< cumulative weights, for sampling

    /// Unnormalized cell mass: the Gaussian integral over cell k, computed
    /// from |k| so the grid is symmetric to the last bit.
    double Weight(int64_t k) const {
      double kk = std::fabs(static_cast<double>(k));
      double u = step / (sigma * std::sqrt(2.0));
      if (k == 0) return std::erf(0.5 * u);
      return 0.5 * (std::erf((kk + 0.5) * u) - std::erf((kk - 0.5) * u));
    }
  };

  /// Degenerate outcome for invalid parameters: the mean when finite.
  static Value Fallback(const std::vector<Value>& params) {
    if (params.size() == 3 && IsFiniteNumeric(params[0])) {
      return Value::Double(params[0].AsReal());
    }
    return Value::Double(0.0);
  }

  /// Parsed grid for `params`, or nullptr on invalid parameters. Cached —
  /// the renormalization constant sums up to 2K+1 erf cells (8193 at the
  /// default cap), far too hot to redo per Pmf call.
  std::shared_ptr<const Grid> GetGrid(
      const std::vector<Value>& params) const {
    int64_t cap = max_half_cells_;
    return cache_.Get(params, [cap](const std::vector<Value>& p, Grid* g) {
      return ParseParams(p, g, cap);
    });
  }

  static bool ParseParams(const std::vector<Value>& params, Grid* grid,
                          int64_t max_half_cells) {
    if (params.size() != 3 || !IsFiniteNumeric(params[0]) ||
        !IsFiniteNumeric(params[1]) || !IsFiniteNumeric(params[2])) {
      return false;
    }
    grid->mu = params[0].AsReal();
    grid->sigma = params[1].AsReal();
    grid->step = params[2].AsReal();
    if (grid->sigma <= 0.0 || grid->step <= 0.0) return false;
    // Grid points must stay distinct doubles: a step below the float
    // spacing at the grid's extent would alias neighboring cells onto the
    // same value, double-counting mass. Such grids are unrepresentable —
    // treat them as invalid parameters.
    double extent = std::fabs(grid->mu) + 8.0 * grid->sigma + grid->step;
    double ulp =
        std::nextafter(extent, std::numeric_limits<double>::infinity()) -
        extent;
    if (grid->step <= 8.0 * ulp) return false;
    // Cover ±8σ (mass beyond is ~1e-15) but cap the cell count so a tiny
    // step cannot blow up enumeration; renormalization keeps δ total.
    // Clamp in the double domain: σ/Δx can exceed int64 range.
    double cells = std::ceil(8.0 * grid->sigma / grid->step);
    if (!(cells >= 1.0)) cells = 1.0;
    if (cells > static_cast<double>(max_half_cells)) {
      cells = static_cast<double>(max_half_cells);
    }
    grid->half_cells = static_cast<int64_t>(cells);
    size_t cells_count = static_cast<size_t>(2 * grid->half_cells + 1);
    grid->weights.clear();
    grid->cum.clear();
    grid->weights.reserve(cells_count);
    grid->cum.reserve(cells_count);
    double total = 0.0;
    for (int64_t k = -grid->half_cells; k <= grid->half_cells; ++k) {
      double w = grid->Weight(k);
      grid->weights.push_back(w);
      total += w;
      grid->cum.push_back(total);
    }
    grid->total = total;
    return true;
  }

  int64_t max_half_cells_;
  ParamTableCache<Grid> cache_;
};

// ---------------------------------------------------------------------------
// zipf — extension: Zipf over ranks 1..N with exponent s,
// zipf<s, N>(k) = k⁻ˢ / H_{N,s}.
// ---------------------------------------------------------------------------

class ZipfDist : public Distribution {
 public:
  std::string_view name() const override { return "zipf"; }
  bool AcceptsDim(size_t dim) const override { return dim == 2; }

  Prob Pmf(const std::vector<Value>& params,
           const Value& outcome) const override {
    std::shared_ptr<const ZData> z = Data(params);
    if (z == nullptr) {
      return IsInt(outcome, 1) ? Prob::One() : Prob::Zero();
    }
    if (!outcome.is_int() || outcome.int_value() < 1 ||
        outcome.int_value() > z->n) {
      return Prob::Zero();
    }
    return Prob::FromDouble(
        std::pow(static_cast<double>(outcome.int_value()), -z->s) / z->h);
  }

  bool HasFiniteSupport(const std::vector<Value>& params) const override {
    std::shared_ptr<const ZData> z = Data(params);
    if (z == nullptr) return true;
    return static_cast<uint64_t>(z->n) <= kMaxEnumerable;
  }

  std::vector<Value> Support(const std::vector<Value>& params,
                             size_t limit) const override {
    std::shared_ptr<const ZData> z = Data(params);
    if (z == nullptr) return {Value::Int(1)};
    size_t cap = limit > 0 ? limit : static_cast<size_t>(kMaxEnumerable);
    std::vector<Value> support;
    for (int64_t k = 1; k <= z->n; ++k) {
      if (support.size() >= cap) break;
      support.push_back(Value::Int(k));
    }
    return support;
  }

  Value Sample(const std::vector<Value>& params, Rng* rng) const override {
    std::shared_ptr<const ZData> z = Data(params);
    if (z == nullptr) return Value::Int(1);
    double s = z->s;
    int64_t n = z->n;
    double u = rng->NextDouble() * z->h;
    int64_t m = ExactTerms(n);
    // Binary search the precomputed cumulative weights of the exact region.
    size_t idx = static_cast<size_t>(
        std::upper_bound(z->cum.begin(), z->cum.end(), u) - z->cum.begin());
    if (idx < z->cum.size()) {
      return Value::Int(static_cast<int64_t>(idx) + 1);
    }
    if (n <= m) return Value::Int(n);
    // Invert the integral tail: ∫_{m+½}^{x} t⁻ˢ dt = u − cum.
    double a = static_cast<double>(m) + 0.5;
    double r = u - z->cum.back();
    double x;
    if (s == 1.0) {
      x = a * std::exp(r);
    } else {
      x = std::pow(std::pow(a, 1.0 - s) + r * (1.0 - s), 1.0 / (1.0 - s));
    }
    if (!(x >= a)) x = a + 0.5;
    if (x > static_cast<double>(n)) x = static_cast<double>(n);
    return Value::Int(static_cast<int64_t>(std::nearbyint(x)));
  }

 private:
  struct ZData {
    double s = 0.0;
    int64_t n = 0;
    double h = 1.0;           ///< H_{n,s}, the normalization constant.
    std::vector<double> cum;  ///< cumulative k⁻ˢ over the exact region
  };

  std::shared_ptr<const ZData> Data(
      const std::vector<Value>& params) const {
    return cache_.Get(params, Parse);
  }

  static bool Parse(const std::vector<Value>& params, ZData* z) {
    if (params.size() != 2 || !IsFiniteNumeric(params[0]) ||
        !IntParam(params[1], &z->n) || z->n < 1) {
      return false;
    }
    z->s = params[0].AsReal();
    // Negative exponents concentrate mass at the *last* ranks, breaking
    // the prefix-truncation (maximal-mass window) contract; the canonical
    // Zipf family has s ≥ 0, so reject the rest as invalid parameters.
    if (!std::isfinite(z->s) || z->s < 0.0) return false;
    // Keep every rank weight k^±(|s|+1) within double range AND every
    // normalized mass (whose ratio to the largest weight spans up to
    // 10^2·span) above underflow, so the normalizer cannot hit inf and
    // no rank mass collapses to 0.
    double span = (std::fabs(z->s) + 1.0) *
                  std::log10(static_cast<double>(z->n) + 1.0);
    if (span > 140.0) return false;
    // H_{n,s} = Σ_{k≤n} k⁻ˢ: exact cumulative sum for the leading ranks
    // (kept for binary-searched sampling), midpoint integral for the tail
    // so the cost never scales with a program-supplied n.
    int64_t m = ExactTerms(z->n);
    z->cum.clear();
    z->cum.reserve(static_cast<size_t>(m));
    double h = 0.0;
    for (int64_t k = 1; k <= m; ++k) {
      h += std::pow(static_cast<double>(k), -z->s);
      z->cum.push_back(h);
    }
    if (z->n > m) {
      double a = static_cast<double>(m) + 0.5;
      double b = static_cast<double>(z->n) + 0.5;
      h += z->s == 1.0 ? std::log(b / a)
                       : (std::pow(b, 1.0 - z->s) -
                          std::pow(a, 1.0 - z->s)) /
                             (1.0 - z->s);
    }
    z->h = h;
    return true;
  }

  /// How many leading ranks get summed exactly; the rest use the integral.
  static int64_t ExactTerms(int64_t n) {
    return std::min(n, kExactCutover * 16);
  }

  ParamTableCache<ZData> cache_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Status DistributionRegistry::Register(std::unique_ptr<Distribution> dist) {
  std::string name(dist->name());
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    return Status::AlreadyExists("distribution '" + name +
                                 "' is already registered");
  }
  by_name_.emplace(std::move(name), std::move(dist));
  return Status::OK();
}

const Distribution* DistributionRegistry::Lookup(std::string_view name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return it->second.get();
}

DistributionRegistry DistributionRegistry::Builtins() {
  DistributionRegistry registry;
  registry.Register(std::make_unique<FlipDist>());
  registry.Register(std::make_unique<DieDist>());
  registry.Register(std::make_unique<DiscreteDist>());
  registry.Register(std::make_unique<UniformIntDist>());
  registry.Register(std::make_unique<BinomialDist>());
  registry.Register(std::make_unique<GeometricDist>());
  registry.Register(std::make_unique<PoissonDist>());
  return registry;
}

Status RegisterExtensionDistributions(DistributionRegistry* registry,
                                      const ExtensionOptions& options) {
  // The cap bounds both enumeration and the cached weight tables; the
  // upper limit matches kMaxEnumerable so a single grid can never claim a
  // support the chase would refuse to materialize elsewhere.
  constexpr int64_t kMaxHalfCellsLimit = int64_t{1} << 20;
  if (options.normalgrid_max_half_cells < 1 ||
      options.normalgrid_max_half_cells > kMaxHalfCellsLimit) {
    return Status::InvalidArgument(
        "normalgrid_max_half_cells must be in [1, 2^20], got " +
        std::to_string(options.normalgrid_max_half_cells));
  }
  GDLOG_RETURN_IF_ERROR(registry->Register(
      std::make_unique<NormalGridDist>(options.normalgrid_max_half_cells)));
  GDLOG_RETURN_IF_ERROR(registry->Register(std::make_unique<ZipfDist>()));
  return Status::OK();
}

}  // namespace gdlog
